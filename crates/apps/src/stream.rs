//! StreamAgg port: streaming filter/aggregation pipeline.
//!
//! A windowed sensor-stream pipeline: every outer iteration ingests one
//! window of a deterministic synthetic signal (drift + seasonality +
//! noise + spikes), filters it through an exponential moving average,
//! and maintains running aggregates. The outer loop is a fixed
//! enumerator over windows, like the FFmpeg port, but the techniques are
//! the survey's streaming ones: insignificant events are *skipped*
//! (their value is predicted by the filter state), the filter arithmetic
//! is *precision scaled*, and the per-window robust statistic is
//! *memoized* across windows.
//!
//! Approximable blocks:
//!
//! | Block | Technique | Effect of approximation |
//! |---|---|---|
//! | `event_filter` | task skipping | events deviating little from the EMA prediction are not processed |
//! | `ema_update` | precision scaling | the filter state is kept on a coarser quantization grid |
//! | `window_stats` | memoization | the sorted-window median is recomputed only every level+1-th window |
//!
//! QoS: relative distortion over the per-window report triple, where
//! each report is a *running* aggregate (cumulative event mean, running
//! mean of the EMA state, running mean of the window medians) — the
//! summary a monitoring dashboard republishes after every window. The
//! running aggregates make the pipeline phase-sensitive: an error in an
//! early window biases *every* later report, while a late error only
//! touches the tail of the output vector.

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::technique::{precision_cost, quantized, should_skip, Memoizer};
use opprox_approx_rt::{
    ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError, WorkCounter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the `event_filter` block.
pub const BLOCK_FILTER: usize = 0;
/// Index of the `ema_update` block.
pub const BLOCK_EMA: usize = 1;
/// Index of the `window_stats` block.
pub const BLOCK_STATS: usize = 2;

/// EMA smoothing factor.
const ALPHA: f64 = 0.08;
/// Base quantization step for the precision-scaled filter state.
const QUANT_STEP: f64 = 5e-3;
/// Base deviation threshold for event skipping, in signal units.
const SKIP_STEP: f64 = 0.15;

/// The streaming filter/aggregation application.
///
/// Input parameters: `window` (events per window) and `windows`
/// (outer-loop iteration count).
#[derive(Debug, Clone)]
pub struct StreamAgg {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for StreamAgg {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamAgg {
    /// Creates the application with its three approximable blocks.
    pub fn new() -> Self {
        StreamAgg {
            meta: opprox_approx_rt::app::AppMeta {
                name: "StreamAgg".into(),
                input_param_names: vec!["window".into(), "windows".into()],
                blocks: vec![
                    BlockDescriptor::new("event_filter", TechniqueKind::TaskSkipping, 5),
                    BlockDescriptor::new("ema_update", TechniqueKind::PrecisionScaling, 5),
                    BlockDescriptor::new("window_stats", TechniqueKind::Memoization, 5),
                ],
            },
        }
    }
}

impl ApproxApp for StreamAgg {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let window = input.get(0) as usize;
        if !(8..=1024).contains(&window) {
            return Err(RuntimeError::InvalidInput(format!(
                "window must be in 8..=1024, got {window}"
            )));
        }
        let windows = input.get(1) as u64;
        if !(1..=5000).contains(&windows) {
            return Err(RuntimeError::InvalidInput(format!(
                "windows must be in 1..=5000, got {windows}"
            )));
        }

        let mut rng = StdRng::seed_from_u64(seed_from(input, 0x5A));
        let mut log = CallContextLog::new();
        let mut counter = WorkCounter::new();

        let mut ema = 0.0f64;
        let mut cum_sum = 0.0f64;
        let mut cum_count = 0u64;
        let mut ema_sum = 0.0f64;
        let mut med_sum = 0.0f64;
        let mut stats_memo: Memoizer<f64> = Memoizer::new();
        let mut output = Vec::with_capacity(3 * windows as usize);
        let mut buffer = vec![0.0f64; window];

        for iter in 0..windows {
            let cfg = schedule.config_at(iter);
            let t0 = (iter as usize * window) as f64;

            // --- Block 0: event_filter (task skipping) ------------------
            // Generating an event is free (it models the sensor); the
            // work is *processing* it. A skipped event is replaced by the
            // filter's prediction — the EMA state — before aggregation.
            let lvl_s = cfg.level(BLOCK_FILTER);
            let mut w: u64 = 0;
            for (k, slot) in buffer.iter_mut().enumerate() {
                let t = t0 + k as f64;
                // Drift + two seasonal harmonics + noise + rare spikes.
                let mut x = 2.0
                    + 1.5e-4 * t
                    + 0.8 * (t * 0.021).sin()
                    + 0.3 * (t * 0.0043).cos()
                    + (rng.gen::<f64>() - 0.5) * 0.2;
                if rng.gen::<f64>() < 0.01 {
                    x += rng.gen::<f64>() * 3.0;
                }
                let deviation = (x - ema).abs();
                if should_skip(deviation, lvl_s, SKIP_STEP) {
                    *slot = ema; // predicted, not processed
                    w += 1;
                } else {
                    *slot = x;
                    w += 6; // full ingest: parse, validate, route
                }
            }
            counter.charge(w, w * 2);
            log.record(iter, BLOCK_FILTER, w);

            // --- Block 1: ema_update (precision scaling) ----------------
            let lvl_p = cfg.level(BLOCK_EMA);
            let cost_p = precision_cost(4, lvl_p);
            let mut w: u64 = 0;
            for &x in buffer.iter() {
                ema += ALPHA * (x - ema);
                ema = quantized(ema, lvl_p, QUANT_STEP);
                cum_sum += x;
                w += cost_p;
            }
            cum_count += window as u64;
            counter.charge(w, w * 3); // wide accumulators dominate energy
            log.record(iter, BLOCK_EMA, w);

            // --- Block 2: window_stats (memoization) --------------------
            let lvl_m = cfg.level(BLOCK_STATS);
            let mut w: u64 = 0;
            let median = stats_memo.get_or_compute(iter as usize, lvl_m, || {
                let mut sorted = buffer.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("signal values are finite"));
                w = 4 * window as u64; // the sort is the expensive part
                0.5 * (sorted[window / 2] + sorted[(window - 1) / 2])
            });
            w += 1;
            counter.charge(w, w);
            log.record(iter, BLOCK_STATS, w);

            ema_sum += ema;
            med_sum += median;
            let reports = (iter + 1) as f64;
            output.push(cum_sum / cum_count as f64);
            output.push(ema_sum / reports);
            output.push(med_sum / reports);
            counter.add(3);
        }

        Ok(RunResult {
            output,
            work: counter.total(),
            outer_iters: windows,
            log,
        })
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        vec![
            InputParams::new(vec![64.0, 40.0]),
            InputParams::new(vec![96.0, 30.0]),
            InputParams::new(vec![64.0, 60.0]),
            InputParams::new(vec![128.0, 40.0]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![64.0, 40.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = StreamAgg::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn output_has_three_values_per_window() {
        let app = StreamAgg::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(g.outer_iters, 40);
        assert_eq!(g.output.len(), 3 * 40);
        assert!(g.output.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn every_technique_reduces_work() {
        let app = StreamAgg::new();
        let g = app.golden(&input()).unwrap();
        for (block, levels) in [(0usize, [5u8, 0, 0]), (1, [0, 5, 0]), (2, [0, 0, 5])] {
            let a = app
                .run(
                    &input(),
                    &PhaseSchedule::constant(LevelConfig::new(levels.to_vec())),
                )
                .unwrap();
            assert!(
                a.log.work_of_block(block) < g.log.work_of_block(block),
                "block {block} saved no work"
            );
        }
    }

    #[test]
    fn skipping_perturbs_aggregates() {
        let app = StreamAgg::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![5, 0, 0])),
            )
            .unwrap();
        assert!(app.qos_degradation(&g, &a) > 0.0);
    }

    #[test]
    fn early_phase_error_exceeds_late_phase_error() {
        let app = StreamAgg::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 3, 2]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.qos_degradation(&g, &late) <= app.qos_degradation(&g, &early),
            "late {} vs early {}",
            app.qos_degradation(&g, &late),
            app.qos_degradation(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = StreamAgg::new();
        assert!(app.golden(&InputParams::new(vec![4.0, 40.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![64.0, 0.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![64.0])).is_err());
    }
}
