//! Stencil port: 2D heat-diffusion image kernel with PSNR QoS.
//!
//! A Jacobi-style 5-point stencil over an `n × n` grid with fixed heat
//! sources, cooling Dirichlet-like boundaries, and a timestep outer
//! loop. The reported image is the *time-averaged* temperature field
//! mapped onto the 0–255 pixel scale, judged by PSNR like the FFmpeg
//! port — the second PSNR-governed workload, with a genuinely different
//! phase structure (diffusive relaxation instead of inter-frame delta
//! coding).
//!
//! Approximable blocks:
//!
//! | Block | Technique | Effect of approximation |
//! |---|---|---|
//! | `diffuse_rows` | loop perforation | only every level+1-th row is relaxed per sweep (rotating offset) |
//! | `flux_quantize` | precision scaling | cell updates are computed on a coarser temperature grid |
//! | `boundary_cool` | loop truncation | trailing boundary cells skip their cooling update |
//!
//! QoS: `PSNR_CAP − PSNR` over the averaged field, exactly the video
//! pipeline's convention, so both PSNR workloads share one budget scale.
//! Averaging over the sweep trajectory gives the kernel its phase
//! structure: heat misplaced early stays misplaced (and averaged) until
//! diffusion flushes it out, while a late error only touches the last
//! few samples of the average.

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::qos::{psnr, psnr_degradation};
use opprox_approx_rt::technique::{
    perforated_indices_offset, precision_cost, quantized, truncated_len,
};
use opprox_approx_rt::{
    ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError, WorkCounter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the `diffuse_rows` block.
pub const BLOCK_DIFFUSE: usize = 0;
/// Index of the `flux_quantize` block.
pub const BLOCK_FLUX: usize = 1;
/// Index of the `boundary_cool` block.
pub const BLOCK_BOUNDARY: usize = 2;

/// Diffusion coefficient (stable for the 5-point explicit scheme).
const KAPPA: f64 = 0.2;
/// Heat injected per source per sweep, in temperature units.
const SOURCE_HEAT: f64 = 60.0;
/// Number of point sources.
const NUM_SOURCES: usize = 6;
/// Boundary cooling factor per refreshed boundary cell.
const COOLING: f64 = 0.5;
/// Radiative leak per sweep: every cell loses this fraction of its
/// temperature to the ambient. The leak pins the relaxation time to
/// ~1/LEAK sweeps regardless of grid size, so perturbations decay well
/// within a phase and the field amplitude is flat across the run.
const LEAK: f64 = 0.12;
/// Exact warm-up sweeps before the measured loop, enough to reach the
/// steady state (several multiples of 1/LEAK).
const WARMUP: u64 = 40;
/// Base quantization step for the precision-scaled updates, in
/// temperature units (pixel scale).
const QUANT_STEP: f64 = 0.25;

/// The heat-diffusion stencil application.
///
/// Input parameters: `grid` (edge length of the square field) and
/// `sweeps` (outer-loop iteration count).
#[derive(Debug, Clone)]
pub struct Stencil {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for Stencil {
    fn default() -> Self {
        Self::new()
    }
}

impl Stencil {
    /// Creates the application with its three approximable blocks.
    pub fn new() -> Self {
        Stencil {
            meta: opprox_approx_rt::app::AppMeta {
                name: "Stencil".into(),
                input_param_names: vec!["grid".into(), "sweeps".into()],
                blocks: vec![
                    BlockDescriptor::new("diffuse_rows", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("flux_quantize", TechniqueKind::PrecisionScaling, 5),
                    BlockDescriptor::new("boundary_cool", TechniqueKind::LoopTruncation, 3),
                ],
            },
        }
    }

    /// PSNR (dB) of an approximate run against the exact one — the
    /// domain metric before conversion to a degradation.
    pub fn psnr_of(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        psnr(&exact.output, &approx.output, 255.0)
    }
}

impl ApproxApp for Stencil {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let n = input.get(0) as usize;
        if !(8..=64).contains(&n) {
            return Err(RuntimeError::InvalidInput(format!(
                "grid must be in 8..=64, got {n}"
            )));
        }
        let sweeps = input.get(1) as u64;
        if !(1..=5000).contains(&sweeps) {
            return Err(RuntimeError::InvalidInput(format!(
                "sweeps must be in 1..=5000, got {sweeps}"
            )));
        }

        // Deterministic interior source placement.
        let mut rng = StdRng::seed_from_u64(seed_from(input, 0x57));
        let sources: Vec<(usize, usize)> = (0..NUM_SOURCES)
            .map(|_| (rng.gen_range(1..n - 1), rng.gen_range(1..n - 1)))
            .collect();

        let mut temp = vec![0.0f64; n * n];
        let mut next = vec![0.0f64; n * n];
        let mut avg = vec![0.0f64; n * n];
        let mut log = CallContextLog::new();
        let mut counter = WorkCounter::new();

        // Boundary ring in walk order, for the truncated cooling pass.
        let mut ring: Vec<usize> = Vec::with_capacity(4 * n - 4);
        for j in 0..n {
            ring.push(j); // top row
        }
        for i in 1..n - 1 {
            ring.push(i * n + (n - 1)); // right column
        }
        for j in (0..n).rev() {
            ring.push((n - 1) * n + j); // bottom row
        }
        for i in (1..n - 1).rev() {
            ring.push(i * n); // left column
        }

        // Warm the field to its driven steady state with exact sweeps, so
        // every measured phase sees the same amplitude. Modeled as loading
        // a checkpointed initial condition: charged a token unit per sweep,
        // not the full stencil cost.
        for _ in 0..WARMUP {
            for &(i, j) in &sources {
                temp[i * n + j] += SOURCE_HEAT;
            }
            for t in temp.iter_mut() {
                *t *= 1.0 - LEAK;
            }
            next.copy_from_slice(&temp);
            for row in 1..n - 1 {
                for col in 1..n - 1 {
                    let c = row * n + col;
                    let lap = temp[c - 1] + temp[c + 1] + temp[c - n] + temp[c + n] - 4.0 * temp[c];
                    next[c] = temp[c] + KAPPA * lap;
                }
            }
            std::mem::swap(&mut temp, &mut next);
            for &c in ring.iter() {
                temp[c] *= COOLING;
            }
            counter.add(1);
        }

        for iter in 0..sweeps {
            let cfg = schedule.config_at(iter);

            // Inject the sources and radiate to ambient (always exact;
            // not an approximable block).
            for &(i, j) in &sources {
                temp[i * n + j] += SOURCE_HEAT;
            }
            for t in temp.iter_mut() {
                *t *= 1.0 - LEAK;
            }
            counter.add(NUM_SOURCES as u64 + 1);

            // --- Blocks 0+1: diffuse_rows / flux_quantize ---------------
            // One fused sweep, accounted per block: row selection is the
            // perforation knob, per-cell arithmetic the precision knob.
            let lvl_r = cfg.level(BLOCK_DIFFUSE);
            let lvl_q = cfg.level(BLOCK_FLUX);
            let cost_q = precision_cost(6, lvl_q);
            next.copy_from_slice(&temp);
            let mut w_rows: u64 = 0;
            let mut w_flux: u64 = 0;
            for i in perforated_indices_offset(n - 2, lvl_r, iter as usize) {
                let row = i + 1;
                w_rows += 2;
                for col in 1..n - 1 {
                    let c = row * n + col;
                    let lap = temp[c - 1] + temp[c + 1] + temp[c - n] + temp[c + n] - 4.0 * temp[c];
                    next[c] = quantized(temp[c] + KAPPA * lap, lvl_q, QUANT_STEP);
                    w_flux += cost_q;
                }
            }
            counter.charge(w_rows, w_rows);
            log.record(iter, BLOCK_DIFFUSE, w_rows);
            // Precision-scaled arithmetic sheds energy faster than time:
            // narrower flux words shrink memory traffic quadratically.
            counter.charge(w_flux, w_flux * cost_q / 6);
            log.record(iter, BLOCK_FLUX, w_flux);
            std::mem::swap(&mut temp, &mut next);

            // --- Block 2: boundary_cool (truncation over the ring) ------
            let lvl_b = cfg.level(BLOCK_BOUNDARY);
            let cooled = truncated_len(ring.len(), lvl_b, ring.len() / 5, ring.len() / 4);
            let mut w: u64 = 0;
            for &c in ring.iter().take(cooled) {
                temp[c] *= COOLING;
                w += 2;
            }
            counter.charge(w, w);
            log.record(iter, BLOCK_BOUNDARY, w);

            // Trajectory average — the reported image.
            for (a, t) in avg.iter_mut().zip(temp.iter()) {
                *a += t;
            }
            counter.add(2);
        }

        // Map onto the pixel scale, saturating like an 8-bit sensor.
        let inv = 1.0 / sweeps as f64;
        for a in avg.iter_mut() {
            *a = (*a * inv).clamp(0.0, 255.0);
        }

        Ok(RunResult {
            output: avg,
            work: counter.total(),
            outer_iters: sweeps,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        psnr_degradation(self.psnr_of(exact, approx))
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        vec![
            InputParams::new(vec![16.0, 40.0]),
            InputParams::new(vec![20.0, 40.0]),
            InputParams::new(vec![16.0, 60.0]),
            InputParams::new(vec![24.0, 30.0]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::qos::PSNR_CAP;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![16.0, 40.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = Stencil::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn field_stays_on_the_pixel_scale() {
        let app = Stencil::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(g.output.len(), 16 * 16);
        assert!(g.output.iter().all(|v| (0.0..=255.0).contains(v)));
        // The sources actually heated the field.
        assert!(g.output.iter().any(|v| *v > 1.0));
    }

    #[test]
    fn qos_is_psnr_based() {
        let app = Stencil::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(app.psnr_of(&g, &g), PSNR_CAP);
        assert_eq!(app.qos_degradation(&g, &g), 0.0);
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![5, 5, 3])),
            )
            .unwrap();
        let deg = app.qos_degradation(&g, &a);
        assert!(deg > 0.0);
        assert!((app.psnr_of(&g, &a) - (PSNR_CAP - deg)).abs() < 1e-12);
    }

    #[test]
    fn perforation_reduces_work() {
        let app = Stencil::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![4, 0, 0])),
            )
            .unwrap();
        assert!(a.work < g.work);
    }

    #[test]
    fn early_phase_error_exceeds_late_phase_error() {
        let app = Stencil::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 3, 1]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.qos_degradation(&g, &late) <= app.qos_degradation(&g, &early),
            "late {} vs early {}",
            app.qos_degradation(&g, &late),
            app.qos_degradation(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = Stencil::new();
        assert!(app.golden(&InputParams::new(vec![4.0, 40.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![16.0, 0.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![16.0])).is_err());
    }
}
