//! CoMD port: Lennard-Jones molecular dynamics.
//!
//! CoMD is a proxy app for classical MD: evaluate the force on each atom
//! due to all others, then numerically integrate Newton's equations. Its
//! outer loop is the *classic timestep loop* — the iteration count is an
//! input parameter and (unlike LULESH) does not depend on the internal
//! approximation levels.
//!
//! Approximable blocks (Table 1 of the paper uses loop perforation and
//! loop truncation for CoMD):
//!
//! | Block | Technique | Effect of approximation |
//! |---|---|---|
//! | `lj_force` | loop perforation | skipped atoms reuse the previous step's force |
//! | `advance_velocity` | loop truncation | trailing atoms keep their old velocity this step |
//! | `compute_energy` | loop perforation | per-atom energy reduction sampled, skipped atoms reuse stale values |
//!
//! QoS: the paper uses the difference in potential and kinetic energy
//! versus the accurate execution, averaged across all atoms — here the
//! output vector is the per-atom total energy, compared with the default
//! relative-distortion metric.

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::technique::{perforated_indices, truncated_len};
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the `lj_force` block.
pub const BLOCK_FORCE: usize = 0;
/// Index of the `advance_velocity` block.
pub const BLOCK_VELOCITY: usize = 1;
/// Index of the `compute_energy` block.
pub const BLOCK_ENERGY: usize = 2;

/// Integration time step.
const DT: f64 = 0.006;
/// Lennard-Jones interaction cutoff radius.
const CUTOFF: f64 = 2.5;
/// Clamp on per-component force to keep approximated runs stable.
const FORCE_CAP: f64 = 1e3;
/// Clamp on per-component velocity.
const VELOCITY_CAP: f64 = 50.0;

/// The CoMD-style molecular-dynamics application.
///
/// Input parameters: `unit_cells` (atoms per edge of the simple-cubic
/// lattice), `lattice_param` (lattice spacing in σ units) and
/// `timesteps` (outer-loop iteration count).
#[derive(Debug, Clone)]
pub struct CoMd {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for CoMd {
    fn default() -> Self {
        Self::new()
    }
}

impl CoMd {
    /// Creates the application with its three approximable blocks.
    pub fn new() -> Self {
        CoMd {
            meta: opprox_approx_rt::app::AppMeta {
                name: "CoMD".into(),
                input_param_names: vec![
                    "unit_cells".into(),
                    "lattice_param".into(),
                    "timesteps".into(),
                ],
                blocks: vec![
                    BlockDescriptor::new("lj_force", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("advance_velocity", TechniqueKind::LoopTruncation, 5),
                    BlockDescriptor::new("compute_energy", TechniqueKind::LoopPerforation, 5),
                ],
            },
        }
    }
}

/// Lennard-Jones pair potential and force magnitude over distance.
///
/// Returns `(u, f_over_r)` where `u` is the potential energy and
/// `f_over_r` the force magnitude divided by the distance (so the force
/// vector is `f_over_r * dr`).
fn lj(r2: f64) -> (f64, f64) {
    let inv_r2 = 1.0 / r2;
    let s6 = inv_r2 * inv_r2 * inv_r2;
    let s12 = s6 * s6;
    let u = 4.0 * (s12 - s6);
    let f_over_r = 24.0 * (2.0 * s12 - s6) * inv_r2;
    (u, f_over_r)
}

impl ApproxApp for CoMd {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let nx = input.get(0) as usize;
        if !(2..=8).contains(&nx) {
            return Err(RuntimeError::InvalidInput(format!(
                "unit_cells must be in 2..=8, got {nx}"
            )));
        }
        let lattice = input.get(1);
        if !(0.9..=2.0).contains(&lattice) {
            return Err(RuntimeError::InvalidInput(format!(
                "lattice_param must be in 0.9..=2.0, got {lattice}"
            )));
        }
        let steps = input.get(2) as u64;
        if !(1..=5000).contains(&steps) {
            return Err(RuntimeError::InvalidInput(format!(
                "timesteps must be in 1..=5000, got {steps}"
            )));
        }

        let n = nx * nx * nx;
        let mut rng = StdRng::seed_from_u64(seed_from(input, 0x22));
        let mut pos: Vec<[f64; 3]> = Vec::with_capacity(n);
        for ix in 0..nx {
            for iy in 0..nx {
                for iz in 0..nx {
                    pos.push([
                        ix as f64 * lattice,
                        iy as f64 * lattice,
                        iz as f64 * lattice,
                    ]);
                }
            }
        }
        // Thermal velocities, deterministic per input; hot enough that the
        // system is a chaotic fluid rather than a quasi-harmonic crystal,
        // so early perturbations amplify over the remaining trajectory.
        let mut vel: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen::<f64>() * 2.4 - 1.2,
                    rng.gen::<f64>() * 2.4 - 1.2,
                    rng.gen::<f64>() * 2.4 - 1.2,
                ]
            })
            .collect();
        // Slight positional disorder breaks lattice symmetry.
        for p in pos.iter_mut() {
            for c in p.iter_mut() {
                *c += rng.gen::<f64>() * 0.1 - 0.05;
            }
        }
        let mut force: Vec<[f64; 3]> = vec![[0.0; 3]; n];
        let mut pe: Vec<f64> = vec![0.0; n];
        let mut energy: Vec<f64> = vec![0.0; n];
        let mut avg_energy: Vec<f64> = vec![0.0; n];

        let mut log = CallContextLog::new();
        let mut work: u64 = 0;
        let cutoff2 = CUTOFF * CUTOFF;

        for iter in 0..steps {
            let cfg = schedule.config_at(iter);

            // --- Block 0: lj_force (perforation over atoms) -------------
            let lvl_f = cfg.level(BLOCK_FORCE);
            let mut w: u64 = 0;
            for i in perforated_indices(n, lvl_f) {
                let mut f = [0.0f64; 3];
                let mut u_i = 0.0;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let dr = [
                        pos[i][0] - pos[j][0],
                        pos[i][1] - pos[j][1],
                        pos[i][2] - pos[j][2],
                    ];
                    let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                    if r2 < cutoff2 {
                        let (u, f_over_r) = lj(r2.max(0.64));
                        u_i += 0.5 * u;
                        f[0] += f_over_r * dr[0];
                        f[1] += f_over_r * dr[1];
                        f[2] += f_over_r * dr[2];
                        w += 6;
                    }
                    w += 3;
                }
                for c in 0..3 {
                    force[i][c] = f[c].clamp(-FORCE_CAP, FORCE_CAP);
                }
                pe[i] = u_i;
            }
            work += w;
            log.record(iter, BLOCK_FORCE, w);

            // --- Block 1: advance_velocity (truncation over atoms) ------
            let lvl_v = cfg.level(BLOCK_VELOCITY);
            let updated = truncated_len(n, lvl_v, n / 10, n / 4);
            let mut w: u64 = 0;
            for (i, v) in vel.iter_mut().enumerate().take(updated) {
                for c in 0..3 {
                    v[c] = (v[c] + DT * force[i][c]).clamp(-VELOCITY_CAP, VELOCITY_CAP);
                }
                w += 4;
            }
            // Positions always advance (cheap, not an AB on its own).
            // Reflective walls keep the fluid at constant density so the
            // per-iteration force work — and with it the phase-specific
            // speedup — stays flat across the run.
            let wall = nx as f64 * lattice + 0.6;
            for (p, v) in pos.iter_mut().zip(vel.iter_mut()) {
                for c in 0..3 {
                    p[c] += DT * v[c];
                    if p[c] < -0.6 {
                        p[c] = -1.2 - p[c];
                        v[c] = -v[c];
                    } else if p[c] > wall {
                        p[c] = 2.0 * wall - p[c];
                        v[c] = -v[c];
                    }
                }
                w += 3;
            }
            work += w;
            log.record(iter, BLOCK_VELOCITY, w);

            // --- Block 2: compute_energy (perforation over atoms) -------
            let lvl_e = cfg.level(BLOCK_ENERGY);
            let mut w: u64 = 0;
            for i in perforated_indices(n, lvl_e) {
                let ke =
                    0.5 * (vel[i][0] * vel[i][0] + vel[i][1] * vel[i][1] + vel[i][2] * vel[i][2]);
                energy[i] = ke + pe[i];
                w += 5;
            }
            // Per-atom trajectory averages — the thermodynamic observable
            // CoMD reports. A perturbation introduced in phase p corrupts
            // every sample from p to the end of the run (chaotic
            // trajectories never reconverge), so early-phase approximation
            // contaminates almost the whole average while late-phase
            // approximation only touches its own tail.
            for (avg, e) in avg_energy.iter_mut().zip(energy.iter()) {
                *avg += e;
            }
            work += w;
            log.record(iter, BLOCK_ENERGY, w);
            work += 2;
        }

        for avg in avg_energy.iter_mut() {
            *avg /= steps as f64;
        }

        Ok(RunResult {
            output: avg_energy,
            work,
            outer_iters: steps,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        // Energy difference per atom, scaled by the golden magnitude with
        // a unit floor (per-atom energies near zero would otherwise blow
        // the relative metric up).
        let n = exact.output.len().min(approx.output.len());
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = exact
            .output
            .iter()
            .zip(approx.output.iter())
            .map(|(e, a)| (a - e).abs() / e.abs().max(1.0))
            .sum();
        (100.0 * sum / n as f64).min(opprox_approx_rt::qos::QOS_SATURATION)
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        let mut out = Vec::new();
        for &cells in &[3.0, 4.0] {
            for &lat in &[1.1, 1.25] {
                for &steps in &[120.0, 180.0] {
                    out.push(InputParams::new(vec![cells, lat, steps]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![3.0, 1.15, 120.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = CoMd::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn iteration_count_is_exactly_the_timestep_parameter() {
        let app = CoMd::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(g.outer_iters, 120);
        // ... and is unaffected by approximation (unlike LULESH).
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![5, 5, 5])),
            )
            .unwrap();
        assert_eq!(a.outer_iters, 120);
    }

    #[test]
    fn energies_are_finite_and_bounded() {
        let app = CoMd::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(g.output.len(), 27);
        for e in &g.output {
            assert!(e.is_finite());
            assert!(e.abs() < 1e4);
        }
    }

    #[test]
    fn approximation_reduces_work_and_perturbs_energy() {
        let app = CoMd::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![4, 0, 0])),
            )
            .unwrap();
        assert!(a.work < g.work);
        assert!(app.qos_degradation(&g, &a) > 0.0);
    }

    #[test]
    fn early_phase_error_exceeds_late_phase_error() {
        let app = CoMd::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 2, 0]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.qos_degradation(&g, &late) < app.qos_degradation(&g, &early),
            "late {} vs early {}",
            app.qos_degradation(&g, &late),
            app.qos_degradation(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = CoMd::new();
        assert!(app
            .golden(&InputParams::new(vec![1.0, 1.1, 100.0]))
            .is_err());
        assert!(app
            .golden(&InputParams::new(vec![3.0, 0.1, 100.0]))
            .is_err());
        assert!(app.golden(&InputParams::new(vec![3.0, 1.1, 0.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![3.0])).is_err());
    }
}
