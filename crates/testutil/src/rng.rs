//! A minimal seeded generator for tests.
//!
//! Test code that needs "some varied but reproducible values" should not
//! drag the full `rand` stack into every suite; this splitmix64 stepper
//! is enough. It is intentionally *not* the generator the production
//! sampler uses, so tests cannot accidentally couple to its stream.

/// A splitmix64 sequence: 64 bits of well-mixed state per step, fully
/// determined by the seed.
///
/// # Example
///
/// ```
/// use opprox_testutil::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value in `[0, bound)` via widening multiply (no modulo bias to
    /// speak of at test scales).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a positive bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xDEAD);
        let mut b = SplitMix64::new(0xDEAD);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_stay_in_unit_interval_and_vary() {
        let mut rng = SplitMix64::new(42);
        let values: Vec<f64> = (0..256).map(|_| rng.next_f64()).collect();
        assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((0.35..0.65).contains(&mean), "suspicious mean {mean}");
    }

    #[test]
    fn bounded_draws_respect_the_bound() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some residue never drawn: {seen:?}"
        );
    }
}
