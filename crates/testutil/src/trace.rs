//! Deterministic telemetry capture for trace-driven tests.
//!
//! [`TraceCapture`] owns a [`ManualClock`] and builds evaluation engines
//! whose telemetry is timed by it, so span durations — and therefore the
//! JSON export — are exactly reproducible: no wall clock ever leaks into
//! a captured trace. The module also carries the query helpers the
//! trace-driven suites share: per-key counter extraction and grouping of
//! `optimize.phase` events into their Algorithm-2 solves.

use crate::chaos::ChaosScenario;
use opprox_core::evaluator::EvalEngine;
use opprox_core::{ManualClock, TelemetryReport};
use std::sync::Arc;

/// A manual clock plus engine builders wired to it.
///
/// # Example
///
/// ```
/// use opprox_testutil::trace::TraceCapture;
///
/// let capture = TraceCapture::new();
/// let engine = capture.engine(2);
/// capture.clock().advance_micros(10);
/// let report = engine.telemetry_report();
/// assert!(report.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceCapture {
    clock: Arc<ManualClock>,
}

impl TraceCapture {
    /// A capture whose clock starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared manual clock; advance it to give spans nonzero
    /// durations.
    pub fn clock(&self) -> &Arc<ManualClock> {
        &self.clock
    }

    /// A clean engine with `threads` workers, its telemetry timed by
    /// [`TraceCapture::clock`].
    pub fn engine(&self, threads: usize) -> EvalEngine {
        EvalEngine::new(threads).with_telemetry_clock(self.clock.clone())
    }

    /// A fault-injecting engine built from `scenario`, its telemetry
    /// timed by [`TraceCapture::clock`].
    pub fn chaos_engine(&self, scenario: &ChaosScenario) -> EvalEngine {
        scenario.engine().with_telemetry_clock(self.clock.clone())
    }
}

/// The `(key, value)` pairs of every per-key counter under `prefix` —
/// e.g. `per_key_counters(&report, "eval.golden.exec[")` yields one
/// entry per distinct golden cache key.
pub fn per_key_counters(report: &TelemetryReport, prefix: &str) -> Vec<(String, u64)> {
    report
        .counters_with_prefix(prefix)
        .into_iter()
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

/// Groups the report's `optimize.phase` events by their `solve` field,
/// in solve order; within each solve the events keep emission (= step)
/// order. Events without a `solve` field are skipped.
pub fn optimize_solves(report: &TelemetryReport) -> Vec<Vec<OptimizePhaseEvent>> {
    let mut solves: Vec<Vec<OptimizePhaseEvent>> = Vec::new();
    for event in report.events_named("optimize.phase") {
        let Some(solve) = event.field("solve") else {
            continue;
        };
        let parsed = OptimizePhaseEvent {
            solve: solve as usize,
            step: event.field("step").unwrap_or(f64::NAN) as usize,
            phase: event.field("phase").unwrap_or(f64::NAN) as usize,
            roi: event.field("roi").unwrap_or(f64::NAN),
            allocated: event.field("allocated").unwrap_or(f64::NAN),
            leftover_in: event.field("leftover_in").unwrap_or(f64::NAN),
            leftover_out: event.field("leftover_out").unwrap_or(f64::NAN),
        };
        if solves.len() <= parsed.solve {
            solves.resize_with(parsed.solve + 1, Vec::new);
        }
        solves[parsed.solve].push(parsed);
    }
    solves
}

/// One `optimize.phase` event, decoded from its numeric fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizePhaseEvent {
    /// Which Algorithm-2 solve this step belongs to (0-based).
    pub solve: usize,
    /// Position in the decreasing-ROI visit order.
    pub step: usize,
    /// The phase visited at this step.
    pub phase: usize,
    /// The phase's ROI at solve time.
    pub roi: f64,
    /// Budget allocated to the phase (its proportional share plus any
    /// rolled-over leftover).
    pub allocated: f64,
    /// Leftover budget carried into this step.
    pub leftover_in: f64,
    /// Leftover budget carried out of this step.
    pub leftover_out: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_core::Telemetry;

    #[test]
    fn solves_group_in_step_order() {
        let t = Telemetry::new();
        for (solve, step, phase) in [(0, 0, 1), (0, 1, 0), (1, 0, 1)] {
            t.event(
                "optimize.phase",
                &[
                    ("solve", f64::from(solve)),
                    ("step", f64::from(step)),
                    ("phase", f64::from(phase)),
                    ("roi", 2.0),
                    ("allocated", 1.0),
                    ("leftover_in", 0.0),
                    ("leftover_out", 0.0),
                ],
            );
        }
        let solves = optimize_solves(&t.report());
        assert_eq!(solves.len(), 2);
        assert_eq!(solves[0].len(), 2);
        assert_eq!(solves[0][1].step, 1);
        assert_eq!(solves[1][0].phase, 1);
    }

    #[test]
    fn captured_engines_share_the_manual_clock() {
        let capture = TraceCapture::new();
        let engine = capture.engine(1);
        capture.clock().advance_micros(25);
        let t = engine.telemetry();
        let out = t.span("stage/test", || 7);
        assert_eq!(out, 7);
        let report = engine.telemetry_report();
        // The span opened and closed at the same manual instant.
        assert_eq!(report.span("stage/test").unwrap().total_micros, 0);
        assert_eq!(report.timeline[0].start_micros, 25);
    }
}
