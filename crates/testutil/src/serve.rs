//! Helpers for suites that exercise `opprox serve` and the v1 wire
//! protocol: artifact files for hot-reload tests and a minimal
//! line-oriented TCP client.

use crate::fixtures::{trained_pso, trained_streamagg};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// Writes the shared lazily-trained PSO artifact to `path`, exactly as
/// `opprox train --out` would, so server suites can load and hot-reload
/// a real artifact without re-training.
///
/// # Panics
///
/// Panics when serialization or the write fails — test-fixture errors
/// should fail loudly.
pub fn write_pso_artifact(path: impl AsRef<Path>) {
    let json = trained_pso().0.to_json().expect("serialize PSO artifact");
    std::fs::write(path.as_ref(), json).expect("write PSO artifact");
}

/// Writes the shared lazily-trained StreamAgg artifact to `path`, for
/// suites that serve more than one application at once.
///
/// # Panics
///
/// Panics when serialization or the write fails — test-fixture errors
/// should fail loudly.
pub fn write_streamagg_artifact(path: impl AsRef<Path>) {
    let json = trained_streamagg()
        .to_json()
        .expect("serialize StreamAgg artifact");
    std::fs::write(path.as_ref(), json).expect("write StreamAgg artifact");
}

/// Sends each request line to a running server over one connection and
/// returns the reply line for each, in order.
///
/// # Panics
///
/// Panics on connection or I/O failures, or when the server closes the
/// connection before answering every line.
pub fn send_lines(addr: &str, lines: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect to serve");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes()).expect("send frame");
        writer.write_all(b"\n").expect("send newline");
        writer.flush().expect("flush frame");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(
            !reply.is_empty(),
            "server closed the connection before replying to {line:?}"
        );
        replies.push(reply.trim_end().to_string());
    }
    replies
}
