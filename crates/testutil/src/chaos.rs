//! The chaos-scenario DSL.
//!
//! A [`ChaosScenario`] is a compact, chainable description of one
//! fault-injection experiment: which fault classes fire at what rates,
//! how the engine recovers (retries, timeout budget), and how many
//! worker threads run it. Suites build a scenario, call
//! [`ChaosScenario::engine`], and drive the ordinary training/optimize
//! entry points through the returned engine — fault injection happens
//! inside the evaluator, so the application code under test is the real
//! thing.
//!
//! The module also carries the fixture apps chaos suites need ([`SlowApp`]
//! stalls every run to trip real wall-clock budgets) and the panic-noise
//! filter ([`silence_injected_panics`]) that keeps intentionally injected
//! worker panics out of the test log.

use opprox_approx_rt::app::AppMeta;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};
use opprox_core::evaluator::EvalEngine;
use opprox_core::{FaultPlan, RecoveryPolicy};

/// Installs a process-wide panic hook that suppresses intentionally
/// injected panics (payloads containing `"injected fault"`) while
/// forwarding every other panic to the default hook.
///
/// Idempotent; [`ChaosScenario::engine`] calls it automatically, so
/// suites only need it directly when they inject panics by hand.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// The four injectable fault classes, one per failure mode the recovery
/// layer must degrade (not abort) under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The app run panics mid-execution.
    Panic,
    /// The app run exceeds its (synthetic) time budget.
    Timeout,
    /// The app run returns NaN/∞ QoS output.
    NonFiniteQos,
    /// The result is corrupted at the cache-insert boundary.
    PoisonedCache,
}

impl FaultClass {
    /// Every fault class, for matrix-style suites.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::Panic,
        FaultClass::Timeout,
        FaultClass::NonFiniteQos,
        FaultClass::PoisonedCache,
    ];

    /// A short, stable label for test names and assertion messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Panic => "panic",
            FaultClass::Timeout => "timeout",
            FaultClass::NonFiniteQos => "non-finite-qos",
            FaultClass::PoisonedCache => "poisoned-cache",
        }
    }

    fn apply(self, plan: FaultPlan, rate: f64) -> FaultPlan {
        match self {
            FaultClass::Panic => plan.panics(rate),
            FaultClass::Timeout => plan.timeouts(rate),
            FaultClass::NonFiniteQos => plan.non_finite(rate),
            FaultClass::PoisonedCache => plan.poisoned(rate),
        }
    }
}

/// One fault-injection experiment: a [`FaultPlan`], a [`RecoveryPolicy`],
/// and a thread count, built fluently and turned into an engine.
///
/// # Example
///
/// ```
/// use opprox_testutil::chaos::{ChaosScenario, FaultClass};
///
/// let engine = ChaosScenario::seeded(42)
///     .inject(FaultClass::Timeout, 0.2)
///     .max_retries(3)
///     .threads(4)
///     .engine();
/// assert!(engine.fault_injection_enabled());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ChaosScenario {
    plan: FaultPlan,
    policy: RecoveryPolicy,
    threads: usize,
}

impl ChaosScenario {
    /// A quiet scenario (no faults, default recovery, one thread) with
    /// the given injection seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosScenario {
            plan: FaultPlan::seeded(seed),
            policy: RecoveryPolicy::default(),
            threads: 1,
        }
    }

    /// Adds one fault class at `rate` (chainable; classes compose).
    pub fn inject(mut self, class: FaultClass, rate: f64) -> Self {
        self.plan = class.apply(self.plan, rate);
        self
    }

    /// Forces the first `n` attempts of every evaluation to fail — the
    /// deterministic lever for exact failure schedules.
    pub fn fail_first_attempts(mut self, n: u32) -> Self {
        self.plan = self.plan.fail_first_attempts(n);
        self
    }

    /// Retry budget after the first failed attempt.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.policy.max_retries = n;
        self
    }

    /// Real wall-clock budget per evaluation, in milliseconds.
    pub fn eval_timeout_ms(mut self, ms: u64) -> Self {
        self.policy.eval_timeout_ms = Some(ms);
        self
    }

    /// Worker thread count for the engine.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The scenario's fault plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The scenario's recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Builds the evaluation engine for this scenario (and installs the
    /// injected-panic noise filter, since panic scenarios unwind through
    /// the default hook's backtrace printer otherwise).
    pub fn engine(&self) -> EvalEngine {
        silence_injected_panics();
        EvalEngine::with_faults(self.threads, self.plan, self.policy)
    }

    /// The standard chaos matrix: one scenario per fault class, each
    /// injecting only that class at `rate` under a seed derived from
    /// `seed` and the class index — so classes stay independent but the
    /// whole matrix is reproducible from one number.
    pub fn matrix(seed: u64, rate: f64) -> Vec<(FaultClass, ChaosScenario)> {
        FaultClass::ALL
            .iter()
            .enumerate()
            .map(|(i, &class)| {
                let scenario = ChaosScenario::seeded(seed ^ ((i as u64 + 1) << 32));
                (class, scenario.inject(class, rate))
            })
            .collect()
    }
}

/// Wraps an app with an artificial stall before every run, to trip real
/// wall-clock budgets ([`RecoveryPolicy::eval_timeout_ms`] and the bench
/// runner's probe timeout).
pub struct SlowApp<A> {
    inner: A,
    delay_ms: u64,
}

impl<A: ApproxApp> SlowApp<A> {
    /// Wraps `inner`, sleeping `delay_ms` at the start of every run.
    pub fn new(inner: A, delay_ms: u64) -> Self {
        SlowApp { inner, delay_ms }
    }
}

impl<A: ApproxApp> ApproxApp for SlowApp<A> {
    fn meta(&self) -> &AppMeta {
        self.inner.meta()
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
        self.inner.run(input, schedule)
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        self.inner.qos_degradation(exact, approx)
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        self.inner.representative_inputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_compose_classes_and_policy() {
        let s = ChaosScenario::seeded(7)
            .inject(FaultClass::Panic, 0.5)
            .inject(FaultClass::PoisonedCache, 0.25)
            .max_retries(5)
            .eval_timeout_ms(100)
            .threads(3);
        assert!(s.plan().is_active());
        assert_eq!(s.plan().seed(), 7);
        assert_eq!(s.policy().max_retries, 5);
        assert_eq!(s.policy().eval_timeout_ms, Some(100));
        let engine = s.engine();
        assert!(engine.fault_injection_enabled());
        assert_eq!(engine.threads(), 3);
    }

    #[test]
    fn matrix_covers_every_class_with_distinct_seeds() {
        let matrix = ChaosScenario::matrix(0xC0FFEE, 0.3);
        assert_eq!(matrix.len(), FaultClass::ALL.len());
        let mut seeds: Vec<u64> = matrix.iter().map(|(_, s)| s.plan().seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), matrix.len(), "per-class seeds must differ");
        for (class, scenario) in &matrix {
            assert!(scenario.plan().is_active(), "{} inactive", class.label());
        }
    }

    #[test]
    fn slow_app_delegates_behaviour() {
        let app = SlowApp::new(opprox_apps::Pso::new(), 0);
        let input = InputParams::new(vec![10.0, 2.0]);
        let golden = app.golden(&input).expect("golden");
        assert_eq!(app.qos_degradation(&golden, &golden), 0.0);
        assert_eq!(app.meta().name, "PSO");
        assert!(!app.representative_inputs().is_empty());
    }
}
