//! Surgical mutation of serialized `Value` trees.
//!
//! Some corruption cannot survive a JSON *text* round-trip (NaN renders
//! as `null`, for instance), so corruption suites seed defects on the
//! in-memory value tree of a healthy artifact and deserialize the result.
//! These helpers are the common vocabulary for that: walk to an exact
//! path, or rewrite every (or just the first) occurrence of a key
//! anywhere in the tree.

use serde::value::Value;

/// Walks to a field through nested objects by exact key path.
///
/// # Panics
///
/// Panics when a path segment is missing or the tree is not an object at
/// that depth — mutation fixtures should fail loudly on schema drift.
pub fn path_mut<'a>(value: &'a mut Value, path: &[&str]) -> &'a mut Value {
    let mut cur = value;
    for key in path {
        let Value::Object(entries) = cur else {
            panic!("expected an object at `{key}`");
        };
        cur = &mut entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("no key `{key}`"))
            .1;
    }
    cur
}

/// Applies `f` to every value stored under `key`, anywhere in the tree.
pub fn mutate_keys(value: &mut Value, key: &str, f: &mut dyn FnMut(&mut Value)) {
    match value {
        Value::Object(entries) => {
            for (k, v) in entries.iter_mut() {
                if k == key {
                    f(v);
                }
                mutate_keys(v, key, f);
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                mutate_keys(item, key, f);
            }
        }
        _ => {}
    }
}

/// Applies `f` only to the first value stored under `key` (tree order).
pub fn mutate_first_key(value: &mut Value, key: &str, f: impl FnOnce(&mut Value)) {
    let mut f = Some(f);
    mutate_keys(value, key, &mut |v| {
        if let Some(f) = f.take() {
            f(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value::Number;

    fn tree() -> Value {
        Value::Object(vec![
            (
                "outer".to_string(),
                Value::Object(vec![("x".to_string(), Value::Number(Number::U64(1)))]),
            ),
            (
                "list".to_string(),
                Value::Array(vec![Value::Object(vec![(
                    "x".to_string(),
                    Value::Number(Number::U64(2)),
                )])]),
            ),
        ])
    }

    #[test]
    fn path_mut_reaches_nested_fields() {
        let mut v = tree();
        *path_mut(&mut v, &["outer", "x"]) = Value::Number(Number::U64(9));
        assert_eq!(
            *path_mut(&mut v, &["outer", "x"]),
            Value::Number(Number::U64(9))
        );
    }

    #[test]
    fn mutate_keys_hits_objects_and_arrays() {
        let mut v = tree();
        let mut hits = 0;
        mutate_keys(&mut v, "x", &mut |_| hits += 1);
        assert_eq!(hits, 2, "one under `outer`, one inside `list`");
    }

    #[test]
    fn mutate_first_key_stops_after_one() {
        let mut v = tree();
        mutate_first_key(&mut v, "x", |x| *x = Value::Number(Number::U64(7)));
        assert_eq!(
            *path_mut(&mut v, &["outer", "x"]),
            Value::Number(Number::U64(7))
        );
        let Value::Object(entries) = &v else {
            unreachable!()
        };
        let Value::Array(items) = &entries[1].1 else {
            unreachable!()
        };
        let Value::Object(inner) = &items[0] else {
            unreachable!()
        };
        assert_eq!(
            inner[0].1,
            Value::Number(Number::U64(2)),
            "second untouched"
        );
    }
}
