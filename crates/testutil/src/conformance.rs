//! Registry-driven [`ApproxApp`] contract suite.
//!
//! Every application registered in [`opprox_apps::registry`] must hold
//! the contracts the OPPROX pipeline silently assumes: a level-0
//! schedule reproduces the golden run bitwise, QoS degradation is finite
//! and non-negative everywhere, per-iteration block work never increases
//! with the approximation level, results are byte-identical across
//! engine thread counts and reruns, and every declared block actually
//! executes on the reference input. The checks take `&dyn ApproxApp`, so
//! a test over `all_apps()` covers any future port for free — a new app
//! is conformant the moment it registers, or the suite names the exact
//! contract it breaks.
//!
//! # Example
//!
//! ```
//! use opprox_testutil::conformance::assert_full_conformance;
//!
//! let app = opprox_apps::registry::by_name("pso").unwrap();
//! assert_full_conformance(app.as_ref());
//! ```

use opprox_approx_rt::block::TechniqueKind;
use opprox_approx_rt::config::{local_sweep, sample_configs};
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule, RunResult};
use opprox_core::EvalEngine;

/// Seed for the sampled-configuration probes, distinct from the
/// behavioural suite's so the two suites exercise different corners.
const CONFORMANCE_SEED: u64 = 0xC04F;

/// Sampled configurations per check.
const NUM_SAMPLES: usize = 5;

/// Relative slack on the per-iteration work monotonicity check, to
/// absorb convergence-length feedback in apps whose iteration count
/// reacts to approximation.
const WORK_SLACK: f64 = 1.02;

/// The reference input of an app: the first representative input, which
/// every port must provide.
fn reference_input(app: &dyn ApproxApp) -> InputParams {
    app.representative_inputs()
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("{}: no representative inputs", app.meta().name))
}

/// Bitwise equality of two runs: every output `f64` compared by bit
/// pattern (so `-0.0` vs `0.0` or NaN payload drift is caught), plus
/// work and iteration counts.
fn bitwise_equal(a: &RunResult, b: &RunResult) -> bool {
    a.work == b.work
        && a.outer_iters == b.outer_iters
        && a.output.len() == b.output.len()
        && a.output
            .iter()
            .zip(b.output.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A schedule at the accurate configuration must reproduce the golden
/// run bitwise — level 0 is "no approximation", not "a little".
pub fn assert_level_zero_reproduces_golden(app: &dyn ApproxApp) {
    let name = &app.meta().name;
    let input = reference_input(app);
    let golden = app.golden(&input).expect("golden run");
    let accurate = app
        .run(
            &input,
            &PhaseSchedule::constant(LevelConfig::accurate(app.meta().num_blocks())),
        )
        .expect("accurate run");
    assert!(
        bitwise_equal(&golden, &accurate),
        "{name}: an all-zero schedule does not reproduce the golden run"
    );
    assert_eq!(
        app.qos_degradation(&golden, &accurate),
        0.0,
        "{name}: accurate run has nonzero QoS degradation"
    );
}

/// QoS degradation must be finite and non-negative at every sampled
/// configuration and at the all-max extreme.
pub fn assert_qos_finite_and_nonnegative(app: &dyn ApproxApp) {
    let meta = app.meta();
    let name = meta.name.clone();
    let input = reference_input(app);
    let golden = app.golden(&input).expect("golden run");
    let mut configs = sample_configs(&meta.blocks, NUM_SAMPLES, CONFORMANCE_SEED);
    configs.push(LevelConfig::new(
        meta.blocks.iter().map(|b| b.max_level).collect(),
    ));
    for cfg in configs {
        let run = app
            .run(&input, &PhaseSchedule::constant(cfg.clone()))
            .expect("approximate run");
        let qos = app.qos_degradation(&golden, &run);
        assert!(
            qos.is_finite(),
            "{name}: non-finite QoS {qos} at {:?}",
            cfg.levels()
        );
        assert!(
            qos >= 0.0,
            "{name}: negative QoS {qos} at {:?}",
            cfg.levels()
        );
    }
}

/// Per-iteration work of each block must not increase with that block's
/// approximation level (local sweeps, all other blocks accurate).
///
/// Parameter-tuning blocks are exempt: tuning an accuracy parameter
/// moves work *between* blocks (fewer solver iterations, looser
/// tolerances) rather than thinning the block's own per-call cost, so
/// per-iteration monotonicity is not part of that technique's contract.
pub fn assert_block_work_monotone(app: &dyn ApproxApp) {
    let meta = app.meta();
    let name = meta.name.clone();
    let input = reference_input(app);
    for (b, desc) in meta.blocks.iter().enumerate() {
        if desc.technique == TechniqueKind::ParameterTuning {
            continue;
        }
        let golden = app.golden(&input).expect("golden run");
        let mut prev = golden.log.work_of_block(b) as f64 / golden.outer_iters as f64;
        for cfg in local_sweep(&meta.blocks, b) {
            let lvl = cfg.level(b);
            let run = app
                .run(&input, &PhaseSchedule::constant(cfg))
                .expect("sweep run");
            let per_iter = run.log.work_of_block(b) as f64 / run.outer_iters as f64;
            assert!(
                per_iter <= prev * WORK_SLACK,
                "{name}: block `{}` per-iteration work rose from {prev} to {per_iter} at level {lvl}",
                desc.name
            );
            prev = per_iter;
        }
    }
}

/// `(qos, work)` must be byte-identical whether the evaluation engine
/// runs on one thread or several, and across engine instances.
pub fn assert_thread_count_invariance(app: &dyn ApproxApp) {
    let meta = app.meta();
    let name = meta.name.clone();
    let input = reference_input(app);
    let mut jobs: Vec<(InputParams, PhaseSchedule)> = vec![(
        input.clone(),
        PhaseSchedule::constant(LevelConfig::accurate(meta.num_blocks())),
    )];
    for cfg in sample_configs(&meta.blocks, NUM_SAMPLES, CONFORMANCE_SEED ^ 0x7) {
        jobs.push((input.clone(), PhaseSchedule::constant(cfg)));
    }
    let serial = EvalEngine::new(1)
        .run_batch(app, &jobs)
        .expect("serial batch");
    for threads in [4usize, 8] {
        let parallel = EvalEngine::new(threads)
            .run_batch(app, &jobs)
            .expect("parallel batch");
        for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
            assert!(
                bitwise_equal(s, p),
                "{name}: job {i} differs between 1 and {threads} threads"
            );
        }
    }
    let rerun = EvalEngine::new(1)
        .run_batch(app, &jobs)
        .expect("rerun batch");
    for (i, (s, r)) in serial.iter().zip(rerun.iter()).enumerate() {
        assert!(
            bitwise_equal(s, r),
            "{name}: job {i} differs between engine instances"
        );
    }
}

/// Every block the app declares must actually execute (record nonzero
/// work) on the reference input's golden run — a declared-but-dead
/// block would train a model on pure noise.
///
/// Parameter-tuning blocks are exempt here too: they are knobs whose
/// effect lands in *other* blocks' work, not call sites of their own,
/// so instead this check asserts their tuning has an observable effect
/// on total work.
pub fn assert_declared_blocks_execute(app: &dyn ApproxApp) {
    let meta = app.meta();
    let name = meta.name.clone();
    let input = reference_input(app);
    let golden = app.golden(&input).expect("golden run");
    assert_eq!(
        golden.log.outer_iterations(),
        golden.outer_iters,
        "{name}: call-context log disagrees with outer_iters"
    );
    for (b, desc) in meta.blocks.iter().enumerate() {
        if desc.technique == TechniqueKind::ParameterTuning {
            let tuned = app
                .run(
                    &input,
                    &PhaseSchedule::constant(
                        LevelConfig::accurate(meta.num_blocks()).with_level(b, desc.max_level),
                    ),
                )
                .expect("tuned run");
            assert!(
                tuned.work < golden.work,
                "{name}: tuning block `{}` to level {} changed nothing",
                desc.name,
                desc.max_level
            );
            continue;
        }
        assert!(
            golden.log.work_of_block(b) > 0,
            "{name}: declared block `{}` recorded no work on the reference input",
            desc.name
        );
    }
}

/// Runs the full contract suite against one application.
pub fn assert_full_conformance(app: &dyn ApproxApp) {
    assert_level_zero_reproduces_golden(app);
    assert_qos_finite_and_nonnegative(app);
    assert_block_work_monotone(app);
    assert_thread_count_invariance(app);
    assert_declared_blocks_execute(app);
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::app::AppMeta;
    use opprox_approx_rt::block::BlockDescriptor;
    use opprox_approx_rt::log::CallContextLog;
    use opprox_approx_rt::{RunResult, RuntimeError, WorkCounter};

    /// A deliberately broken app: declares two blocks but only runs one.
    struct DeadBlock {
        meta: AppMeta,
    }

    impl DeadBlock {
        fn new() -> Self {
            DeadBlock {
                meta: AppMeta {
                    name: "DeadBlock".into(),
                    input_param_names: vec!["n".into()],
                    blocks: vec![
                        BlockDescriptor::new("live", TechniqueKind::LoopPerforation, 2),
                        BlockDescriptor::new("dead", TechniqueKind::Memoization, 2),
                    ],
                },
            }
        }
    }

    impl ApproxApp for DeadBlock {
        fn meta(&self) -> &AppMeta {
            &self.meta
        }
        fn run(
            &self,
            input: &InputParams,
            schedule: &PhaseSchedule,
        ) -> Result<RunResult, RuntimeError> {
            self.meta.validate_input(input)?;
            self.meta.validate_schedule(schedule)?;
            let mut log = CallContextLog::new();
            let mut counter = WorkCounter::new();
            for iter in 0..4u64 {
                log.record(iter, 0, 10);
                counter.add(10);
            }
            Ok(RunResult {
                output: vec![1.0; 4],
                work: counter.total(),
                outer_iters: 4,
                log,
            })
        }
        fn representative_inputs(&self) -> Vec<InputParams> {
            vec![InputParams::new(vec![4.0])]
        }
    }

    #[test]
    fn conformant_app_passes_every_check() {
        let app = opprox_apps::Pso::new();
        assert_full_conformance(&app);
    }

    #[test]
    #[should_panic(expected = "recorded no work")]
    fn dead_block_is_caught() {
        assert_declared_blocks_execute(&DeadBlock::new());
    }

    #[test]
    fn dead_block_still_passes_unrelated_checks() {
        // The checks are independent: the broken app fails exactly the
        // coverage contract, not the determinism ones.
        let app = DeadBlock::new();
        assert_level_zero_reproduces_golden(&app);
        assert_thread_count_invariance(&app);
    }
}
