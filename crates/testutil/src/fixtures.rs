//! Canonical fixtures shared by the workspace's test suites.
//!
//! Two families live here: cheap *builders* (blocks, schedules, training
//! options, per-app production inputs) and the one genuinely expensive
//! fixture — a real PSO system trained on the seed-5 sampling plan —
//! which is trained once per process behind a [`OnceLock`] and shared by
//! every suite that needs a trained model or its training data.

use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use opprox_apps::{Pso, StreamAgg};
use opprox_core::modeling::ModelingOptions;
use opprox_core::pipeline::{Opprox, TrainedOpprox, TrainingOptions};
use opprox_core::sampling::{collect_training_data, SamplingPlan, TrainingData};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The sampling seed the end-to-end suites train with.
pub const E2E_SEED: u64 = 0xE2E;

/// A small sampling plan that keeps suites fast: 10 sparse samples, no
/// whole-run samples.
pub fn fast_sampling_plan(num_phases: usize, seed: u64) -> SamplingPlan {
    SamplingPlan {
        num_phases,
        sparse_samples: 10,
        whole_run_samples: 0,
        seed,
    }
}

/// Training options for end-to-end tests: a fixed phase count and the
/// fast sampling plan under [`E2E_SEED`].
pub fn fast_training_options(num_phases: usize) -> TrainingOptions {
    TrainingOptions {
        num_phases: Some(num_phases),
        sampling: fast_sampling_plan(num_phases, E2E_SEED),
        ..TrainingOptions::default()
    }
}

/// A cheap-but-representative production input for each registered app.
///
/// # Panics
///
/// Panics on an unknown app name, so a typo fails the test loudly.
pub fn prod_input(name: &str) -> InputParams {
    InputParams::new(match name {
        "LULESH" => vec![48.0, 2.0],
        "FFmpeg" => vec![12.0, 4.0, 600.0, 0.0],
        "Bodytrack" => vec![3.0, 120.0, 20.0],
        "PSO" => vec![16.0, 3.0],
        "CoMD" => vec![3.0, 1.2, 100.0],
        "PageRank" => vec![64.0, 4.0, 100.0],
        "StreamAgg" => vec![96.0, 50.0],
        "Stencil" => vec![20.0, 50.0],
        other => panic!("unknown app {other}"),
    })
}

/// `n` loop-perforation blocks named `b0..b{n-1}`, all with the same
/// `max_level`.
pub fn blocks(n: usize, max_level: u8) -> Vec<BlockDescriptor> {
    (0..n)
        .map(|i| BlockDescriptor::new(format!("b{i}"), TechniqueKind::LoopPerforation, max_level))
        .collect()
}

/// One loop-perforation block per entry of `max_levels`, named
/// `b0..b{n-1}`, each with its own maximum level.
pub fn blocks_with_levels(max_levels: &[u8]) -> Vec<BlockDescriptor> {
    max_levels
        .iter()
        .enumerate()
        .map(|(i, &l)| BlockDescriptor::new(format!("b{i}"), TechniqueKind::LoopPerforation, l))
        .collect()
}

/// PSO's real block descriptors (the fixture apps' most common shape).
pub fn pso_blocks() -> Vec<BlockDescriptor> {
    Pso::new().meta().blocks.clone()
}

/// A schedule assigning the same `level` to every block in every phase.
///
/// # Panics
///
/// Panics when the schedule constructor rejects the shape (e.g. zero
/// phases) — fixtures are for tests, so fail loudly.
pub fn uniform_schedule(
    num_phases: usize,
    num_blocks: usize,
    level: u8,
    expected_iters: u64,
) -> PhaseSchedule {
    let configs = vec![LevelConfig::new(vec![level; num_blocks]); num_phases];
    PhaseSchedule::new(configs, expected_iters).expect("uniform fixture schedule is well-formed")
}

/// One real trained PSO system plus its training data, shared by every
/// suite in the process (training is the expensive part; corruption and
/// optimization happen on clones).
///
/// Trained with the seed-5 / 10-sparse-sample / 2-phase plan — the exact
/// fixture the analyze corruption suite was built around, so diagnostics
/// expectations keyed to it stay valid.
pub fn trained_pso() -> &'static (TrainedOpprox, TrainingData) {
    static CELL: OnceLock<(TrainedOpprox, TrainingData)> = OnceLock::new();
    CELL.get_or_init(|| {
        let app = Pso::new();
        let plan = fast_sampling_plan(2, 5);
        let data = collect_training_data(&app, &app.representative_inputs(), &plan)
            .expect("fixture training data collects");
        let trained = Opprox::train_from_data(&app, &data, 2, &ModelingOptions::default())
            .expect("fixture system trains");
        (trained, data)
    })
}

/// One real trained StreamAgg system, shared by every suite in the
/// process. The second trained fixture exists so serve and chaos suites
/// can exercise genuinely heterogeneous multi-app traffic: StreamAgg has
/// a different block count, techniques (task skipping, precision
/// scaling, memoization), and input arity than PSO.
pub fn trained_streamagg() -> &'static TrainedOpprox {
    static CELL: OnceLock<TrainedOpprox> = OnceLock::new();
    CELL.get_or_init(|| {
        let app = StreamAgg::new();
        let plan = fast_sampling_plan(2, 5);
        let data = collect_training_data(&app, &app.representative_inputs(), &plan)
            .expect("fixture training data collects");
        Opprox::train_from_data(&app, &data, 2, &ModelingOptions::default())
            .expect("fixture system trains")
    })
}

/// The shared trained PSO system as a serialized `Value` tree, ready for
/// [`crate::json`] mutation.
pub fn trained_pso_value() -> Value {
    Serialize::to_value(&trained_pso().0)
}

/// Deserializes a (possibly mutated) value tree back into a trained
/// system.
///
/// # Panics
///
/// Panics when the tree no longer deserializes — corruption fixtures are
/// meant to survive deserialization and fail *semantic* checks instead.
pub fn trained_pso_from(value: &Value) -> TrainedOpprox {
    Deserialize::from_value(value).expect("corrupted model set still deserializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_consistent_shapes() {
        let bs = blocks(3, 4);
        assert_eq!(bs.len(), 3);
        assert!(bs.iter().all(|b| b.max_level == 4));
        let schedule = uniform_schedule(2, 3, 1, 100);
        assert_eq!(schedule.num_phases(), 2);
        assert!(schedule
            .configs()
            .iter()
            .all(|c| c.levels() == vec![1u8, 1, 1]));
    }

    #[test]
    fn prod_inputs_cover_every_registered_app() {
        for app in opprox_apps::registry::all_apps() {
            let name = app.meta().name.clone();
            let input = prod_input(&name);
            assert_eq!(
                input.len(),
                app.meta().input_param_names.len(),
                "{name}: fixture input arity drifted from the app"
            );
        }
    }

    #[test]
    fn trained_fixture_round_trips_through_value_tree() {
        let v = trained_pso_value();
        let back = trained_pso_from(&v);
        assert_eq!(back.app_name(), "PSO");
        assert_eq!(back.num_phases(), 2);
    }
}
