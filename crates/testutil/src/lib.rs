//! Shared test support for the OPPROX workspace.
//!
//! Every test suite in the workspace used to carry its own copy of the
//! same fixtures: a PSO system trained on the seed-5 sampling plan, the
//! per-app "cheap but representative" production inputs, JSON value-tree
//! corruption helpers, and ad-hoc seeded generators. This crate is the
//! single home for those pieces, plus the chaos-scenario DSL used by the
//! fault-injection suites:
//!
//! * [`rng`] — a tiny, dependency-free seeded generator for tests that
//!   need reproducible randomness without pulling in `rand`.
//! * [`fixtures`] — canonical training options, inputs, block/schedule
//!   builders, and the shared lazily-trained PSO system.
//! * [`json`] — surgical mutation of serialized `Value` trees, for
//!   seeding corruption that cannot survive a JSON text round-trip.
//! * [`conformance`] — the registry-driven [`ApproxApp`](opprox_approx_rt::ApproxApp)
//!   contract suite: golden reproduction at level 0, finite QoS,
//!   monotone block work, thread-count invariance, and block coverage,
//!   all takeable by `&dyn ApproxApp` so one loop covers every port.
//! * [`chaos`] — scenario builders that wire a
//!   [`FaultPlan`](opprox_core::FaultPlan) and
//!   [`RecoveryPolicy`](opprox_core::RecoveryPolicy) into an evaluation
//!   engine, fixture apps that stall or misbehave on demand, and the
//!   panic-noise filter for suites that inject worker panics.
//! * [`trace`] — a [`ManualClock`](opprox_core::ManualClock)-driven
//!   telemetry capture plus the query helpers trace-driven suites share.
//! * [`serve`] — artifact-file writers and a line-oriented TCP client
//!   for suites that drive `opprox serve` over the v1 wire protocol.
//!
//! The crate is a **dev-dependency only**: production crates must not
//! link it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod conformance;
pub mod fixtures;
pub mod json;
pub mod rng;
pub mod serve;
pub mod trace;
