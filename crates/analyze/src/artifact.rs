//! Loading and classifying OPPROX artifacts.
//!
//! `opprox analyze` accepts any mix of serialized artifacts and lints
//! whatever combination it is given. Files are classified by their
//! top-level JSON shape (no filename conventions):
//!
//! * object with `app_name` + `models`        → a [`TrainedOpprox`] model set
//! * object with `configs` + `expected_iters` → a [`PhaseSchedule`]
//! * object with `error_budget`               → an [`AccuracySpec`]
//! * object with `goldens` + `records`        → [`TrainingData`]
//! * object with `injected_faults` + `dropped_samples` → a [`RobustnessReport`]
//! * object with `spans` + `counters`         → a [`TelemetryReport`]
//! * array of objects with `technique`        → a `Vec<BlockDescriptor>`
//!
//! Deserialization is deliberately lenient (it mirrors
//! [`TrainedOpprox::from_json`]): a structurally valid but semantically
//! corrupt artifact *loads*, so the lints can say what is wrong with it,
//! instead of failing with an opaque decode error.

use opprox_approx_rt::block::BlockDescriptor;
use opprox_approx_rt::{InputParams, PhaseSchedule};
use opprox_core::pipeline::TrainedOpprox;
use opprox_core::sampling::TrainingData;
use opprox_core::{AccuracySpec, RobustnessReport, TelemetryReport};
use serde::value::Value;
use serde::Deserialize;

/// One classified artifact.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Approximable-block descriptors.
    Blocks(Vec<BlockDescriptor>),
    /// A phase schedule.
    Schedule(PhaseSchedule),
    /// An accuracy specification.
    Spec(AccuracySpec),
    /// A trained model set.
    Trained(Box<TrainedOpprox>),
    /// Collected training data.
    Training(Box<TrainingData>),
    /// A robustness report from a fault-injected (or degraded) run.
    Robustness(Box<RobustnessReport>),
    /// A telemetry trace captured with `--trace-out` (json format).
    Telemetry(Box<TelemetryReport>),
}

impl Artifact {
    /// The noun used in messages (`blocks`, `schedule`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Blocks(_) => "blocks",
            Artifact::Schedule(_) => "schedule",
            Artifact::Spec(_) => "spec",
            Artifact::Trained(_) => "trained model set",
            Artifact::Training(_) => "training data",
            Artifact::Robustness(_) => "robustness report",
            Artifact::Telemetry(_) => "telemetry report",
        }
    }

    /// Classifies and deserializes one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, its shape
    /// matches no known artifact, or field-level decoding fails.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value = serde_json::parse_value(json).map_err(|e| format!("not valid JSON: {e}"))?;
        Self::from_value(&value)
    }

    /// [`Artifact::from_json`] over an already-parsed value tree.
    ///
    /// # Errors
    ///
    /// Returns a message when the shape matches no known artifact or
    /// field-level decoding fails.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let decode_err = |kind: &str, e: serde::DeError| format!("malformed {kind}: {e}");
        if let Some(entries) = value.as_object() {
            let has = |key: &str| entries.iter().any(|(k, _)| k == key);
            if has("app_name") && has("models") {
                return Ok(Artifact::Trained(Box::new(
                    Deserialize::from_value(value)
                        .map_err(|e| decode_err("trained model set", e))?,
                )));
            }
            if has("configs") && has("expected_iters") {
                return Ok(Artifact::Schedule(
                    Deserialize::from_value(value).map_err(|e| decode_err("schedule", e))?,
                ));
            }
            if has("error_budget") {
                return Ok(Artifact::Spec(
                    Deserialize::from_value(value).map_err(|e| decode_err("spec", e))?,
                ));
            }
            if has("goldens") && has("records") {
                return Ok(Artifact::Training(Box::new(
                    Deserialize::from_value(value).map_err(|e| decode_err("training data", e))?,
                )));
            }
            if has("injected_faults") && has("dropped_samples") {
                return Ok(Artifact::Robustness(Box::new(
                    Deserialize::from_value(value)
                        .map_err(|e| decode_err("robustness report", e))?,
                )));
            }
            if has("spans") && has("counters") {
                return Ok(Artifact::Telemetry(Box::new(
                    Deserialize::from_value(value)
                        .map_err(|e| decode_err("telemetry report", e))?,
                )));
            }
            return Err(
                "unrecognized artifact: an object, but not a trained model set \
                 (app_name/models), schedule (configs/expected_iters), spec \
                 (error_budget), training data (goldens/records), robustness \
                 report (injected_faults/dropped_samples), or telemetry report \
                 (spans/counters)"
                    .into(),
            );
        }
        if matches!(value, Value::Array(_)) {
            return Ok(Artifact::Blocks(
                Deserialize::from_value(value).map_err(|e| decode_err("block list", e))?,
            ));
        }
        Err(format!(
            "unrecognized artifact: expected a JSON object or array, got {}",
            value.kind()
        ))
    }
}

/// The combination of artifacts one `analyze` run lints.
///
/// Every slot is optional; each rule states its needs and silently
/// passes when they are not met (an [`crate::rules`] Info diagnostic
/// reports skipped predictive rules).
#[derive(Debug, Clone, Default)]
pub struct ArtifactSet {
    /// Block descriptors, when given explicitly.
    pub blocks: Option<Vec<BlockDescriptor>>,
    /// A phase schedule to lint.
    pub schedule: Option<PhaseSchedule>,
    /// An accuracy specification to lint.
    pub spec: Option<AccuracySpec>,
    /// A trained model set to lint.
    pub trained: Option<TrainedOpprox>,
    /// Training data, used for coverage lints and as the input source
    /// for predictive lints.
    pub training: Option<TrainingData>,
    /// A robustness report to lint (A014/A015).
    pub robustness: Option<RobustnessReport>,
    /// A telemetry report to lint (A016/A017).
    pub telemetry: Option<TelemetryReport>,
}

impl ArtifactSet {
    /// Files one artifact into its slot. A later artifact of the same
    /// kind replaces the earlier one; the replaced kind is returned so
    /// callers can warn.
    pub fn add(&mut self, artifact: Artifact) -> Option<&'static str> {
        let kind = artifact.kind();
        let replaced = match &artifact {
            Artifact::Blocks(_) => self.blocks.is_some(),
            Artifact::Schedule(_) => self.schedule.is_some(),
            Artifact::Spec(_) => self.spec.is_some(),
            Artifact::Trained(_) => self.trained.is_some(),
            Artifact::Training(_) => self.training.is_some(),
            Artifact::Robustness(_) => self.robustness.is_some(),
            Artifact::Telemetry(_) => self.telemetry.is_some(),
        };
        match artifact {
            Artifact::Blocks(b) => self.blocks = Some(b),
            Artifact::Schedule(s) => self.schedule = Some(s),
            Artifact::Spec(s) => self.spec = Some(s),
            Artifact::Trained(t) => self.trained = Some(*t),
            Artifact::Training(t) => self.training = Some(*t),
            Artifact::Robustness(r) => self.robustness = Some(*r),
            Artifact::Telemetry(t) => self.telemetry = Some(*t),
        }
        replaced.then_some(kind)
    }

    /// The block descriptors in force: explicit ones win, else the
    /// trained system's.
    pub fn effective_blocks(&self) -> Option<&[BlockDescriptor]> {
        match (&self.blocks, &self.trained) {
            (Some(b), _) => Some(b),
            (None, Some(t)) => Some(t.blocks()),
            (None, None) => None,
        }
    }

    /// Inputs for the predictive lints, most faithful source first:
    /// the training data's golden-run inputs, else the registered
    /// application's representative inputs, else empty (the predictive
    /// lints emit an Info skip).
    pub fn inputs(&self) -> Vec<InputParams> {
        if let Some(training) = &self.training {
            if !training.goldens.is_empty() {
                return training.goldens.iter().map(|g| g.input.clone()).collect();
            }
        }
        if let Some(trained) = &self.trained {
            if let Some(app) = opprox_apps::registry::by_name(trained.app_name()) {
                return app.representative_inputs();
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::block::TechniqueKind;
    use opprox_approx_rt::LevelConfig;

    #[test]
    fn classifies_each_artifact_shape() {
        let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(2); 3], 60).unwrap();
        let json = serde_json::to_string(&schedule).unwrap();
        assert!(matches!(
            Artifact::from_json(&json).unwrap(),
            Artifact::Schedule(s) if s == schedule
        ));

        let spec = AccuracySpec::new(12.5);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(matches!(
            Artifact::from_json(&json).unwrap(),
            Artifact::Spec(s) if s.error_budget() == 12.5
        ));

        let blocks = vec![BlockDescriptor::new("k", TechniqueKind::LoopPerforation, 3)];
        let json = serde_json::to_string(&blocks).unwrap();
        assert!(matches!(
            Artifact::from_json(&json).unwrap(),
            Artifact::Blocks(b) if b == blocks
        ));

        let json = serde_json::to_string(&TrainingData::default()).unwrap();
        assert!(matches!(
            Artifact::from_json(&json).unwrap(),
            Artifact::Training(_)
        ));
    }

    #[test]
    fn rejects_unclassifiable_documents() {
        assert!(Artifact::from_json("{not json").is_err());
        assert!(Artifact::from_json("42").is_err());
        let err = Artifact::from_json(r#"{"surprise": true}"#).unwrap_err();
        assert!(err.contains("unrecognized artifact"), "{err}");
    }

    #[test]
    fn corrupt_schedule_still_loads_for_linting() {
        // Field-level corruption (zero expected iterations, ragged block
        // counts) must deserialize: the lints, not the loader, report it.
        let json = r#"{"configs":[{"levels":[0,0]},{"levels":[1]}],"expected_iters":0}"#;
        let Artifact::Schedule(s) = Artifact::from_json(json).unwrap() else {
            panic!("classified as a schedule");
        };
        assert_eq!(s.expected_iters(), 0);
    }

    #[test]
    fn set_replaces_duplicates_and_reports_it() {
        let mut set = ArtifactSet::default();
        assert_eq!(set.add(Artifact::Spec(AccuracySpec::new(1.0))), None);
        assert_eq!(
            set.add(Artifact::Spec(AccuracySpec::new(2.0))),
            Some("spec")
        );
        assert_eq!(set.spec.unwrap().error_budget(), 2.0);
    }

    #[test]
    fn effective_blocks_prefer_explicit_over_trained() {
        let mut set = ArtifactSet::default();
        assert!(set.effective_blocks().is_none());
        set.blocks = Some(vec![BlockDescriptor::new(
            "x",
            TechniqueKind::Memoization,
            1,
        )]);
        assert_eq!(set.effective_blocks().unwrap().len(), 1);
        assert!(set.inputs().is_empty());
    }
}
