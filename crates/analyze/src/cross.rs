//! Cross-artifact audit rules (`X001`+).
//!
//! Where the `A`-series lints judge one artifact in isolation, the
//! `X`-series checks that *pairs* of artifacts from the same run agree:
//! a trace's realized per-phase speedups must sit inside the trained
//! model's observed band (X001), the `optimize.phase` event ledger must
//! conserve the declared budget (X002), the per-key evaluation counters
//! must telescope to their totals (X003), the span timeline must be a
//! well-formed tree that matches its aggregates (X004), a robustness
//! report must agree with the trace it summarizes (X005), a schedule
//! must be executable against the model's block set (X006), and the
//! composed plan prediction must follow from its per-phase parts
//! (X007). X008 reports which of these could not run because the
//! session lacks an artifact, and the adaptive controller's
//! `control.step` budget ledger must conserve what it reclaims (X009).
//!
//! All iteration is over `Vec`s and `BTreeMap`s in deterministic order
//! and the report is sorted before rendering, so audit output is
//! byte-identical across thread counts and reruns of the same session.

use crate::diag::Report;
use crate::rules::diag;
use crate::session::{Session, SessionModel, Solve};

/// Default relative tolerance for rule `X001` drift: a realized
/// per-phase speedup may exceed the model's observed band by this
/// fraction before the audit flags it.
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.25;

/// Relative slack for exact-by-construction floating-point identities
/// (budget telescoping, plan composition). Values are recomputed from
/// the same f64 inputs, so only rounding noise is tolerated.
const EPS: f64 = 1e-6;

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * a.abs().max(b.abs()).max(1.0)
}

/// Runs every applicable cross-artifact rule over the session.
pub fn run_audit(session: &Session, tolerance: f64, report: &mut Report) {
    let model = session.resolve();
    let has_trace = session.telemetry.is_some();

    let trace = "a telemetry trace";
    let trained = "a trained model set";
    if session.trained.is_some() && has_trace {
        check_x001(session, &model, tolerance, report);
    } else {
        let mut needs = Vec::new();
        if session.trained.is_none() {
            needs.push(trained);
        }
        if !has_trace {
            needs.push(trace);
        }
        skipped(report, "X001", &needs.join(" and "));
    }
    if has_trace {
        check_x002(&model, report);
        check_x003(session, &model, report);
        check_x004(session, &model, report);
    } else {
        for code in ["X002", "X003", "X004"] {
            skipped(report, code, trace);
        }
    }
    if session.robustness.is_some() && has_trace {
        check_x005(session, &model, report);
    } else {
        let mut needs = Vec::new();
        if session.robustness.is_none() {
            needs.push("a robustness report");
        }
        if !has_trace {
            needs.push(trace);
        }
        skipped(report, "X005", &needs.join(" and "));
    }
    if !session.schedules.is_empty() && session.effective_blocks().is_some() {
        check_x006(session, report);
    } else {
        let mut needs = Vec::new();
        if session.schedules.is_empty() {
            needs.push("a phase schedule");
        }
        if session.effective_blocks().is_none() {
            needs.push("a block set (or trained model)");
        }
        skipped(report, "X006", &needs.join(" and "));
    }
    if has_trace {
        check_x007(&model, report);
        check_x009(&model, report);
    } else {
        skipped(report, "X007", trace);
        skipped(report, "X009", trace);
    }
}

fn skipped(report: &mut Report, code: &str, needs: &str) {
    diag(
        report,
        "X008",
        "session".to_string(),
        format!("{code} skipped: the session lacks {needs}"),
    );
}

/// X001: realized per-phase speedup vs. the model's observed band.
///
/// The profiler publishes `profile.phase[p].max_speedup` gauges; the
/// trained model records the observed `(min, max)` speedup of every
/// class-phase bucket. The realized maximum must fall inside the union
/// band over classes, widened by `tolerance` on each side — outside it,
/// the deployment has drifted from the conditions the model was fit
/// under and its predictions are extrapolations.
fn check_x001(session: &Session, model: &SessionModel, tolerance: f64, report: &mut Report) {
    let trained = session.trained.as_ref().expect("gated by caller");
    let num_phases = trained.num_phases();
    for (&phase, &realized) in &model.profiled_max_speedup {
        let location = format!("trace.gauge[profile.phase[{phase}].max_speedup]");
        if phase >= num_phases {
            diag(
                report,
                "X001",
                location,
                format!(
                    "trace profiles phase {phase} but the trained model \
                     has only {num_phases} phases"
                ),
            );
            continue;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for class in trained.models().classes() {
            if let Some(pm) = class.phases.get(phase) {
                lo = lo.min(pm.speedup_range.0);
                hi = hi.max(pm.speedup_range.1);
            }
        }
        if !(lo.is_finite() && hi.is_finite()) {
            continue;
        }
        let band_lo = lo * (1.0 - tolerance);
        let band_hi = hi * (1.0 + tolerance);
        if realized > band_hi || realized < band_lo {
            diag(
                report,
                "X001",
                location,
                format!(
                    "realized max speedup {realized:.4} for phase {phase} is outside \
                     the model's observed band [{lo:.4}, {hi:.4}] widened by \
                     tolerance {tolerance} to [{band_lo:.4}, {band_hi:.4}]"
                ),
            );
        }
    }
}

/// X002: budget conservation across the `optimize.phase` ledger.
fn check_x002(model: &SessionModel, report: &mut Report) {
    for solve in &model.solves {
        if solve.steps.is_empty() {
            continue;
        }
        let at =
            |step: usize| format!("trace.event[optimize.phase solve={} step={step}]", solve.id);
        for (i, step) in solve.steps.iter().enumerate() {
            if step.step != i {
                diag(
                    report,
                    "X002",
                    at(i),
                    format!(
                        "step fields are not contiguous: event {i} of solve {} \
                         carries step={}",
                        solve.id, step.step
                    ),
                );
            }
        }
        check_x002_phase_cover(solve, report);
        for (i, step) in solve.steps.iter().enumerate() {
            let expect_in = if i == 0 {
                0.0
            } else {
                solve.steps[i - 1].leftover_out
            };
            if !approx_eq(step.leftover_in, expect_in) {
                diag(
                    report,
                    "X002",
                    at(i),
                    format!(
                        "leftover_in {} does not match the {} ({expect_in})",
                        step.leftover_in,
                        if i == 0 {
                            "zero a solve starts with"
                        } else {
                            "previous step's leftover_out"
                        }
                    ),
                );
            }
            let expect_out = (step.allocated - step.predicted_qos).max(0.0);
            if !approx_eq(step.leftover_out, expect_out) {
                diag(
                    report,
                    "X002",
                    at(i),
                    format!(
                        "leftover_out {} does not equal max(0, allocated - predicted_qos) \
                         = {expect_out}",
                        step.leftover_out
                    ),
                );
            }
            if i > 0 && step.roi > solve.steps[i - 1].roi * (1.0 + EPS) {
                diag(
                    report,
                    "X002",
                    at(i),
                    format!(
                        "roi {} exceeds the previous step's {} — the ledger is not \
                         in decreasing-ROI visit order",
                        step.roi,
                        solve.steps[i - 1].roi
                    ),
                );
            }
        }
        if let Some(budget) = solve.budget {
            let spent: f64 = solve
                .steps
                .iter()
                .map(|s| s.allocated - s.leftover_in)
                .sum();
            if !approx_eq(spent, budget) {
                diag(
                    report,
                    "X002",
                    format!("trace.event[optimize.start solve={}]", solve.id),
                    format!(
                        "per-phase allocations minus rolled-over leftovers sum to \
                         {spent} but the solve declared a budget of {budget}"
                    ),
                );
            }
        }
    }
}

fn check_x002_phase_cover(solve: &Solve, report: &mut Report) {
    let Some(declared) = solve.declared_phases else {
        return;
    };
    let location = format!("trace.event[optimize.start solve={}]", solve.id);
    if solve.steps.len() != declared {
        diag(
            report,
            "X002",
            location,
            format!(
                "solve declared {declared} phases but the ledger has {} \
                 optimize.phase events",
                solve.steps.len()
            ),
        );
        return;
    }
    let mut seen = vec![0usize; declared];
    for step in &solve.steps {
        match seen.get_mut(step.phase) {
            Some(n) => *n += 1,
            None => diag(
                report,
                "X002",
                location.clone(),
                format!(
                    "ledger visits phase {} which is outside the declared \
                     range 0..{declared}",
                    step.phase
                ),
            ),
        }
    }
    for (phase, &n) in seen.iter().enumerate() {
        if n != 1 {
            diag(
                report,
                "X002",
                location.clone(),
                format!("ledger visits phase {phase} {n} times; each phase is visited once"),
            );
        }
    }
}

/// X003: search-ledger / cache-counter consistency.
fn check_x003(session: &Session, model: &SessionModel, report: &mut Report) {
    let tele = session.telemetry.as_ref().expect("gated by caller");
    for (total_name, keys) in [
        ("eval.exec", &model.exec_keys),
        ("eval.cache.hit", &model.hit_keys),
        ("eval.golden.exec", &model.golden_keys),
        ("eval.quarantine.hit", &model.quarantine_keys),
    ] {
        let total = tele.counter(total_name);
        let sum: u64 = keys.values().sum();
        if total != sum {
            diag(
                report,
                "X003",
                format!("trace.counter[{total_name}]"),
                format!(
                    "total counter {total_name}={total} but its per-key ledger \
                     sums to {sum} over {} keys",
                    keys.len()
                ),
            );
        }
    }
    for (&digest, &hits) in &model.quarantine_keys {
        if hits > 0 && model.hit_keys.get(&digest).copied().unwrap_or(0) > 0 {
            diag(
                report,
                "X003",
                format!("trace.counter[eval.quarantine[{digest:#018x}]]"),
                format!(
                    "key {digest:#018x} has both quarantine hits and cache hits; \
                     failed evaluations are never memoized, so a quarantined key \
                     cannot also have served a cached success"
                ),
            );
        }
    }
    for solve in &model.solves {
        for step in &solve.steps {
            if let (Some(evaluated), Some(space)) = (step.evaluated, step.space) {
                if evaluated > space {
                    diag(
                        report,
                        "X003",
                        format!(
                            "trace.event[optimize.phase solve={} step={}]",
                            solve.id, step.step
                        ),
                        format!(
                            "search reports {evaluated} evaluated leaf configurations \
                             in a space of {space}"
                        ),
                    );
                }
            }
        }
    }
}

/// X004: span-tree well-formedness, aggregate agreement, and
/// golden-once-per-key.
fn check_x004(session: &Session, model: &SessionModel, report: &mut Report) {
    let tele = session.telemetry.as_ref().expect("gated by caller");

    // Completion order: the timeline appends when a span *ends*, so end
    // timestamps are non-decreasing.
    let mut prev_end = 0u64;
    for (i, rec) in tele.timeline.iter().enumerate() {
        let end = rec.start_micros + rec.duration_micros;
        if end < prev_end {
            diag(
                report,
                "X004",
                format!("trace.timeline[{i}]"),
                format!(
                    "span {} ends at {end}us, before the previously completed \
                     span's {prev_end}us — the timeline is not in completion order",
                    rec.path
                ),
            );
        }
        prev_end = prev_end.max(end);
    }

    // Nest-or-disjoint: spans come from scoped guards on call stacks, so
    // two spans either nest or do not overlap. Sort by (start, -end) and
    // sweep with a stack of open intervals.
    let mut intervals: Vec<(u64, u64, &str)> = tele
        .timeline
        .iter()
        .map(|r| {
            (
                r.start_micros,
                r.start_micros + r.duration_micros,
                r.path.as_str(),
            )
        })
        .collect();
    intervals.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut open: Vec<(u64, u64, &str)> = Vec::new();
    for (start, end, path) in intervals {
        while open.last().is_some_and(|&(_, top_end, _)| top_end <= start) {
            open.pop();
        }
        if let Some(&(top_start, top_end, top_path)) = open.last() {
            if end > top_end {
                diag(
                    report,
                    "X004",
                    format!("trace.span[{path}]"),
                    format!(
                        "span [{start}us, {end}us] partially overlaps {top_path} \
                         [{top_start}us, {top_end}us]; spans must nest or be disjoint"
                    ),
                );
            }
        }
        open.push((start, end, path));
    }

    // Aggregates are derived from the same occurrences the timeline
    // records, so per-path counts and totals must match exactly.
    let mut derived: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for rec in &tele.timeline {
        let e = derived.entry(rec.path.as_str()).or_default();
        e.0 += 1;
        e.1 += rec.duration_micros;
    }
    for stat in &tele.spans {
        let (count, total) = derived.remove(stat.path.as_str()).unwrap_or((0, 0));
        if stat.count != count || stat.total_micros != total {
            diag(
                report,
                "X004",
                format!("trace.span[{}]", stat.path),
                format!(
                    "aggregate records count={} total={}us but the timeline has \
                     {count} occurrences totalling {total}us",
                    stat.count, stat.total_micros
                ),
            );
        }
    }
    for (path, (count, _)) in derived {
        diag(
            report,
            "X004",
            format!("trace.span[{path}]"),
            format!("timeline has {count} occurrences of a span missing from the aggregates"),
        );
    }

    // Golden runs are memoized: a key's accurate-schedule evaluation
    // executes exactly once; repeats mean the cache was bypassed.
    for (&digest, &count) in &model.golden_keys {
        if count != 1 {
            diag(
                report,
                "X004",
                format!("trace.counter[eval.golden.exec[{digest:#018x}]]"),
                format!("golden evaluation for key {digest:#018x} executed {count} times"),
            );
        }
    }

    // Phase spans ↔ phase events: optimize_traced wraps each phase visit
    // in an `optimize/phase[p]` span and emits one `optimize.phase` event
    // for it, so the counts agree per phase id.
    let mut event_phases: std::collections::BTreeMap<usize, u64> = Default::default();
    for solve in &model.solves {
        for step in &solve.steps {
            *event_phases.entry(step.phase).or_default() += 1;
        }
    }
    let phase_ids: std::collections::BTreeSet<usize> = model
        .phase_spans
        .keys()
        .chain(event_phases.keys())
        .copied()
        .collect();
    for phase in phase_ids {
        let spans = model.phase_spans.get(&phase).copied().unwrap_or(0);
        let events = event_phases.get(&phase).copied().unwrap_or(0);
        if spans != events {
            diag(
                report,
                "X004",
                format!("trace.span[optimize/phase[{phase}]]"),
                format!(
                    "phase {phase} has {spans} optimize/phase spans but {events} \
                     optimize.phase ledger events"
                ),
            );
        }
    }
}

/// X005: robustness report ↔ trace agreement.
fn check_x005(session: &Session, model: &SessionModel, report: &mut Report) {
    let tele = session.telemetry.as_ref().expect("gated by caller");
    let rob = session.robustness.as_ref().expect("gated by caller");
    if tele.counters_with_prefix("eval.").is_empty() && tele.counter("sampling.requested") == 0 {
        skipped(report, "X005", "evaluation counters in the trace");
        return;
    }
    let checks = [
        ("eval.quarantined", "quarantined_keys", rob.quarantined_keys),
        (
            "eval.quarantine.hit",
            "quarantine_hits",
            rob.quarantine_hits,
        ),
    ];
    for (counter, field, value) in checks {
        let traced = tele.counter(counter);
        if traced != value {
            diag(
                report,
                "X005",
                format!("robustness.{field}"),
                format!(
                    "robustness report records {field}={value} but the trace \
                     counter {counter}={traced}"
                ),
            );
        }
    }
    let distinct = model.quarantine_keys.len() as u64;
    if distinct > rob.quarantined_keys {
        diag(
            report,
            "X005",
            "robustness.quarantined_keys".to_string(),
            format!(
                "trace has quarantine hits on {distinct} distinct keys but the \
                 robustness report quarantined only {}",
                rob.quarantined_keys
            ),
        );
    }
    let requested = tele.counter("sampling.requested");
    if (requested > 0 || rob.total_samples > 0) && requested != rob.total_samples {
        diag(
            report,
            "X005",
            "robustness.total_samples".to_string(),
            format!(
                "robustness report's drop-rate denominator total_samples={} \
                 disagrees with the trace counter sampling.requested={requested}",
                rob.total_samples
            ),
        );
    }
}

/// X006: schedule ↔ model/block coverage.
fn check_x006(session: &Session, report: &mut Report) {
    let blocks = session.effective_blocks().expect("gated by caller");
    for (i, schedule) in session.schedules.iter().enumerate() {
        if let Some(trained) = &session.trained {
            if schedule.num_phases() != trained.num_phases() {
                diag(
                    report,
                    "X006",
                    format!("schedule[{i}]"),
                    format!(
                        "schedule has {} phases but the trained model has {}",
                        schedule.num_phases(),
                        trained.num_phases()
                    ),
                );
            }
        }
        for (phase, config) in schedule.configs().iter().enumerate() {
            if config.num_blocks() != blocks.len() {
                diag(
                    report,
                    "X006",
                    format!("schedule[{i}].phase[{phase}]"),
                    format!(
                        "config sets {} block levels but the block set has {}",
                        config.num_blocks(),
                        blocks.len()
                    ),
                );
                continue;
            }
            for (b, block) in blocks.iter().enumerate() {
                let level = config.level(b);
                if level > block.max_level {
                    diag(
                        report,
                        "X006",
                        format!("schedule[{i}].phase[{phase}].block[{b}]"),
                        format!(
                            "level {level} exceeds block '{}' max_level {}",
                            block.name, block.max_level
                        ),
                    );
                }
            }
        }
    }
}

/// X009: the adaptive controller's `control.step` ledger conserves
/// budget. At every re-plan step the controller reclaims the unspent
/// remainder and immediately redistributes all of it across the
/// remaining phases, so per step and over the whole session
/// Σ reclaimed = Σ redistributed holds exactly by construction — a
/// mismatch means budget leaked out of (or was conjured into) the
/// feedback loop and the re-planned schedule's QoS constraint is
/// untrustworthy. The closing `control.plan` totals must agree with the
/// step sums for the same reason. Traces without controller events
/// silently pass.
fn check_x009(model: &SessionModel, report: &mut Report) {
    for control in &model.controls {
        if control.steps.is_empty() {
            continue;
        }
        let reclaimed: f64 = control.steps.iter().map(|s| s.reclaimed).sum();
        let redistributed: f64 = control.steps.iter().map(|s| s.redistributed).sum();
        let location = format!("trace.event[control.start session={}]", control.id);
        if !approx_eq(reclaimed, redistributed) {
            diag(
                report,
                "X009",
                location.clone(),
                format!(
                    "controller ledger leaks budget: the control.step events \
                     reclaim {reclaimed} but redistribute {redistributed}; the \
                     loop redistributes exactly what it reclaims, so the trace \
                     is corrupt or the feedback loop dropped budget"
                ),
            );
        }
        if let Some((plan_reclaimed, plan_redistributed)) = control.totals {
            if !approx_eq(plan_reclaimed, reclaimed)
                || !approx_eq(plan_redistributed, redistributed)
            {
                diag(
                    report,
                    "X009",
                    format!("trace.event[control.plan session={}]", control.id),
                    format!(
                        "control.plan totals (reclaimed {plan_reclaimed}, \
                         redistributed {plan_redistributed}) disagree with the \
                         step ledger sums ({reclaimed}, {redistributed})"
                    ),
                );
            }
        }
        if let Some(declared) = control.declared_phases {
            if control.steps.len() > declared {
                diag(
                    report,
                    "X009",
                    location,
                    format!(
                        "session declared {declared} phases but the ledger has \
                         {} control.step events; the walk emits at most one \
                         step per phase",
                        control.steps.len()
                    ),
                );
            }
        }
    }
}

/// X007: the composed plan prediction follows from its per-phase parts.
fn check_x007(model: &SessionModel, report: &mut Report) {
    for solve in &model.solves {
        let Some((plan_speedup, plan_qos)) = solve.plan else {
            continue;
        };
        if solve.steps.is_empty() {
            continue;
        }
        let mut saved = 0.0f64;
        let mut qos = 0.0f64;
        let mut by_phase = solve.steps.clone();
        by_phase.sort_by_key(|s| s.phase);
        for step in &by_phase {
            saved += 1.0 - 1.0 / step.predicted_speedup.max(0.01);
            qos += step.predicted_qos;
        }
        let speedup = 1.0 / (1.0 - saved).clamp(0.05, 1.0);
        let location = format!("trace.event[optimize.plan solve={}]", solve.id);
        if !approx_eq(speedup, plan_speedup) {
            diag(
                report,
                "X007",
                location.clone(),
                format!(
                    "plan predicts speedup {plan_speedup} but composing the \
                     per-phase ledger gives {speedup}"
                ),
            );
        }
        if !approx_eq(qos, plan_qos) {
            diag(
                report,
                "X007",
                location,
                format!(
                    "plan predicts QoS degradation {plan_qos} but the per-phase \
                     ledger sums to {qos}"
                ),
            );
        }
    }
}
