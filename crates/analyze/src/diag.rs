//! The diagnostics data model and the text/JSON/SARIF emitters.
//!
//! Diagnostics are compiler-style: a stable rule code (`A0xx` for
//! semantic lints, `C0xx` for concurrency rules, `X0xx` for
//! cross-artifact audit rules), a severity, an
//! artifact *location* (a dotted path such as
//! `schedule.phase[3].block[AB2]`), and a human-readable message. The
//! JSON encoding is a stable schema — exactly the keys `code`,
//! `severity`, `location`, `message`, in that order — guarded by a
//! golden-file test so downstream tooling can parse it.

use serde::value::Value;
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make the linted artifacts unusable (corrupt models,
/// impossible schedules) and fail `opprox analyze`; `Warn` findings are
/// suspicious but survivable (and fail under `--deny warnings`); `Info`
/// findings report reduced analysis coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The artifact is unusable; `opprox analyze` exits nonzero.
    Error,
    /// Suspicious but survivable; fails only under `--deny warnings`.
    Warn,
    /// Coverage note (e.g. a lint was skipped for lack of inputs).
    Info,
}

impl Severity {
    /// The lowercase token used in both emitters (`error`, `warning`,
    /// `info`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule code, a severity, where, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `A001`.
    pub code: &'static str,
    /// How bad the finding is.
    pub severity: Severity,
    /// Dotted path into the artifact, e.g. `schedule.phase[3].block[AB2]`.
    pub location: String,
    /// Human-readable description of the defect.
    pub message: String,
}

/// The outcome of one `analyze` run: every diagnostic, sorted by
/// severity, then code, then location.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// The findings, sorted (errors first, then by code and location).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Sorts the findings into the canonical emission order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.severity, a.code, &a.location).cmp(&(b.severity, b.code, &b.location))
        });
    }

    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn`-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Renders the human-readable text form:
    ///
    /// ```text
    /// error[A001] schedule.phase[1].block[AB2]: level 9 exceeds ...
    /// ...
    /// 2 errors, 1 warning
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}] {}: {}\n",
                d.severity, d.code, d.location, d.message
            ));
        }
        let (e, w) = (self.errors(), self.warnings());
        out.push_str(&format!(
            "{} {}, {} {}\n",
            e,
            if e == 1 { "error" } else { "errors" },
            w,
            if w == 1 { "warning" } else { "warnings" },
        ));
        out
    }

    /// Renders the machine-readable JSON form. The schema is stable
    /// (golden-file tested): a top-level object with `diagnostics` (an
    /// array of `{code, severity, location, message}` objects in
    /// emission order), `errors`, and `warnings`.
    pub fn render_json(&self) -> String {
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                Value::Object(vec![
                    ("code".into(), Value::String(d.code.into())),
                    ("severity".into(), Value::String(d.severity.as_str().into())),
                    ("location".into(), Value::String(d.location.clone())),
                    ("message".into(), Value::String(d.message.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("diagnostics".into(), Value::Array(diags)),
            (
                "errors".into(),
                Value::Number(serde::value::Number::U64(self.errors() as u64)),
            ),
            (
                "warnings".into(),
                Value::Number(serde::value::Number::U64(self.warnings() as u64)),
            ),
        ])
        .render_compact()
    }

    /// Renders the findings as a minimal SARIF 2.1.0 log, the
    /// interchange format CI code-scanning UIs ingest. One run, driver
    /// `opprox`; the driver's rule table lists each distinct fired code
    /// (in code order, with its registry summary), and every finding
    /// becomes a `result` whose logical location carries the artifact
    /// path. Severities map `error`→`error`, `warning`→`warning`,
    /// `info`→`note`. Built with the same deterministic value printer
    /// as [`Report::render_json`], so output is byte-stable.
    pub fn render_sarif(&self) -> String {
        let mut fired: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        fired.sort_unstable();
        fired.dedup();
        let rules: Vec<Value> = fired
            .iter()
            .map(|code| {
                let summary = crate::rules::rule(code).map_or("", |r| r.summary);
                Value::Object(vec![
                    ("id".into(), Value::String((*code).into())),
                    (
                        "shortDescription".into(),
                        Value::Object(vec![("text".into(), Value::String(summary.into()))]),
                    ),
                ])
            })
            .collect();
        let results: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                let level = match d.severity {
                    Severity::Error => "error",
                    Severity::Warn => "warning",
                    Severity::Info => "note",
                };
                Value::Object(vec![
                    ("ruleId".into(), Value::String(d.code.into())),
                    ("level".into(), Value::String(level.into())),
                    (
                        "message".into(),
                        Value::Object(vec![("text".into(), Value::String(d.message.clone()))]),
                    ),
                    (
                        "locations".into(),
                        Value::Array(vec![Value::Object(vec![(
                            "logicalLocations".into(),
                            Value::Array(vec![Value::Object(vec![(
                                "fullyQualifiedName".into(),
                                Value::String(d.location.clone()),
                            )])]),
                        )])]),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "$schema".into(),
                Value::String("https://json.schemastore.org/sarif-2.1.0.json".into()),
            ),
            ("version".into(), Value::String("2.1.0".into())),
            (
                "runs".into(),
                Value::Array(vec![Value::Object(vec![
                    (
                        "tool".into(),
                        Value::Object(vec![(
                            "driver".into(),
                            Value::Object(vec![
                                ("name".into(), Value::String("opprox".into())),
                                ("rules".into(), Value::Array(rules)),
                            ]),
                        )]),
                    ),
                    ("results".into(), Value::Array(results)),
                ])]),
            ),
        ])
        .render_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic {
            code: "A003",
            severity: Severity::Warn,
            location: "schedule.expected_iters".into(),
            message: "absurd".into(),
        });
        r.push(Diagnostic {
            code: "A001",
            severity: Severity::Error,
            location: "schedule.phase[1].block[AB2]".into(),
            message: "level 9 exceeds max 5".into(),
        });
        r.sort();
        r
    }

    #[test]
    fn sorts_errors_before_warnings() {
        let r = sample();
        assert_eq!(r.diagnostics()[0].code, "A001");
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn text_emitter_formats_compiler_style() {
        let text = sample().render_text();
        assert!(text.contains("error[A001] schedule.phase[1].block[AB2]: level 9 exceeds max 5"));
        assert!(text.contains("warning[A003]"));
        assert!(text.ends_with("1 error, 1 warning\n"));
    }

    #[test]
    fn json_emitter_is_parseable_and_schema_shaped() {
        let json = sample().render_json();
        let v = serde_json::parse_value(&json).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "diagnostics");
        assert_eq!(obj[1].0, "errors");
        assert_eq!(obj[1].1.as_u64(), Some(1));
        assert_eq!(obj[2].1.as_u64(), Some(1));
        let Value::Array(diags) = &obj[0].1 else {
            panic!("diagnostics is an array");
        };
        let first = diags[0].as_object().unwrap();
        let keys: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["code", "severity", "location", "message"]);
    }

    #[test]
    fn sarif_emitter_is_parseable_and_carries_rules_and_results() {
        let sarif = sample().render_sarif();
        let v = serde_json::parse_value(&sarif).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "$schema");
        assert_eq!(obj[1].1, Value::String("2.1.0".into()));
        let Value::Array(runs) = &obj[2].1 else {
            panic!("runs is an array");
        };
        let run = runs[0].as_object().unwrap();
        let driver = run[0].1.as_object().unwrap()[0].1.as_object().unwrap();
        assert_eq!(driver[0].1, Value::String("opprox".into()));
        let Value::Array(rules) = &driver[1].1 else {
            panic!("rules is an array");
        };
        // Distinct fired codes, in code order.
        assert_eq!(
            rules[0].as_object().unwrap()[0].1,
            Value::String("A001".into())
        );
        assert_eq!(rules.len(), 2);
        let Value::Array(results) = &run[1].1 else {
            panic!("results is an array");
        };
        assert_eq!(results.len(), 2);
        let first = results[0].as_object().unwrap();
        assert_eq!(first[0].1, Value::String("A001".into()));
        assert_eq!(first[1].1, Value::String("error".into()));
        // Same input twice → identical bytes (the emitter is pure).
        assert_eq!(sarif, sample().render_sarif());
    }
}
