//! Static analysis of OPPROX artifacts.
//!
//! A compiler-style diagnostics framework over the things the OPPROX
//! pipeline serializes: block descriptor lists, [`PhaseSchedule`]s,
//! [`AccuracySpec`]s, trained model sets, and training data. Rules have
//! stable codes (`A0xx` semantic lints, `C0xx` concurrency rules
//! discharged by loom/Miri/TSan in CI — see [`rules::RULES`]),
//! severities, and artifact locations such as
//! `schedule.phase[3].block[AB2]`; reports render as text or as a
//! stable JSON schema.
//!
//! The Error-severity model-integrity subset (A004/A007/A012) is the
//! same check [`opprox_core::pipeline::TrainedOpprox::load`] and the
//! optimizer entry path apply, so `opprox analyze` and the runtime
//! boundary cannot drift apart.
//!
//! # Example
//!
//! ```
//! use opprox_analyze::{analyze, Artifact, ArtifactSet};
//!
//! // A 2-phase schedule whose second phase approximates a block harder
//! // than the descriptors allow.
//! let blocks = r#"[{"name":"k","technique":"LoopPerforation","max_level":3}]"#;
//! let schedule = r#"{"configs":[{"levels":[0]},{"levels":[9]}],"expected_iters":100}"#;
//! let mut set = ArtifactSet::default();
//! set.add(Artifact::from_json(blocks).unwrap());
//! set.add(Artifact::from_json(schedule).unwrap());
//!
//! let report = analyze(&set);
//! assert_eq!(report.errors(), 1);
//! let d = &report.diagnostics()[0];
//! assert_eq!(d.code, "A001");
//! assert_eq!(d.location, "schedule.phase[1].block[AB0]");
//! ```
//!
//! Beyond the single-artifact lints, [`audit`] runs the `X0xx`
//! *cross-artifact* rules (see [`cross`]) over a whole session — a
//! trained model set, schedules, a telemetry trace, and a robustness
//! report from one run — and statically verifies that the artifacts
//! agree with each other: budgets conserve, counters telescope, spans
//! nest, realized speedups sit inside the model's band.
//!
//! [`PhaseSchedule`]: opprox_approx_rt::PhaseSchedule
//! [`AccuracySpec`]: opprox_core::AccuracySpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cross;
pub mod diag;
pub mod rules;
pub mod session;

pub use artifact::{Artifact, ArtifactSet};
pub use cross::DEFAULT_DRIFT_TOLERANCE;
pub use diag::{Diagnostic, Report, Severity};
pub use rules::{rule, RuleInfo, RuleKind, RULES};
pub use session::{Session, SessionModel};

/// Runs every semantic lint over the artifact set and returns the
/// sorted report.
pub fn analyze(set: &ArtifactSet) -> Report {
    let mut report = Report::new();
    rules::run_all(set, &mut report);
    report
}

/// Runs every cross-artifact audit rule over the session's artifacts
/// and returns the sorted report. `tolerance` is the X001 drift band
/// widening ([`DEFAULT_DRIFT_TOLERANCE`] when unconfigured).
pub fn audit(artifacts: impl IntoIterator<Item = Artifact>, tolerance: f64) -> Report {
    audit_session(&Session::from_artifacts(artifacts), tolerance)
}

/// [`audit`] over an already-assembled [`Session`].
pub fn audit_session(session: &Session, tolerance: f64) -> Report {
    let mut report = Report::new();
    cross::run_audit(session, tolerance, &mut report);
    report.sort();
    report
}
