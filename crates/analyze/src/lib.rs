//! Static analysis of OPPROX artifacts.
//!
//! A compiler-style diagnostics framework over the things the OPPROX
//! pipeline serializes: block descriptor lists, [`PhaseSchedule`]s,
//! [`AccuracySpec`]s, trained model sets, and training data. Rules have
//! stable codes (`A0xx` semantic lints, `C0xx` concurrency rules
//! discharged by loom/Miri/TSan in CI — see [`rules::RULES`]),
//! severities, and artifact locations such as
//! `schedule.phase[3].block[AB2]`; reports render as text or as a
//! stable JSON schema.
//!
//! The Error-severity model-integrity subset (A004/A007/A012) is the
//! same check [`opprox_core::pipeline::TrainedOpprox::load`] and the
//! optimizer entry path apply, so `opprox analyze` and the runtime
//! boundary cannot drift apart.
//!
//! # Example
//!
//! ```
//! use opprox_analyze::{analyze, Artifact, ArtifactSet};
//!
//! // A 2-phase schedule whose second phase approximates a block harder
//! // than the descriptors allow.
//! let blocks = r#"[{"name":"k","technique":"LoopPerforation","max_level":3}]"#;
//! let schedule = r#"{"configs":[{"levels":[0]},{"levels":[9]}],"expected_iters":100}"#;
//! let mut set = ArtifactSet::default();
//! set.add(Artifact::from_json(blocks).unwrap());
//! set.add(Artifact::from_json(schedule).unwrap());
//!
//! let report = analyze(&set);
//! assert_eq!(report.errors(), 1);
//! let d = &report.diagnostics()[0];
//! assert_eq!(d.code, "A001");
//! assert_eq!(d.location, "schedule.phase[1].block[AB0]");
//! ```
//!
//! [`PhaseSchedule`]: opprox_approx_rt::PhaseSchedule
//! [`AccuracySpec`]: opprox_core::AccuracySpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod diag;
pub mod rules;

pub use artifact::{Artifact, ArtifactSet};
pub use diag::{Diagnostic, Report, Severity};
pub use rules::{rule, RuleInfo, RuleKind, RULES};

/// Runs every semantic lint over the artifact set and returns the
/// sorted report.
pub fn analyze(set: &ArtifactSet) -> Report {
    let mut report = Report::new();
    rules::run_all(set, &mut report);
    report
}
