//! Session loading: resolving a set of artifacts into a linked model.
//!
//! A *session* is whatever subset of one run's artifacts the user hands
//! to `opprox audit`: a trained model set, one or more phase schedules,
//! a telemetry trace, and a robustness report. [`Session::from_artifacts`]
//! files classified [`Artifact`]s into their slots (keeping every
//! schedule — a validated run emits many candidate schedules), and
//! [`Session::resolve`] links the trace's flat ledgers into the typed
//! [`SessionModel`] the cross-artifact rules (see [`crate::cross`])
//! check: `optimize.start`/`optimize.phase`/`optimize.plan` events
//! grouped into [`Solve`]s, per-phase `optimize/phase[p]` span counts,
//! per-key evaluation counters keyed by digest, and the profiled
//! per-phase speedup ceilings.

use crate::artifact::Artifact;
use opprox_approx_rt::block::BlockDescriptor;
use opprox_approx_rt::PhaseSchedule;
use opprox_core::pipeline::TrainedOpprox;
use opprox_core::{RobustnessReport, TelemetryReport};
use std::collections::BTreeMap;

/// The artifacts of one audit run, by kind. Every slot is optional —
/// rules state their needs and the audit reports reduced coverage
/// (rule `X008`) for pairs the session lacks.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// The trained model set.
    pub trained: Option<TrainedOpprox>,
    /// Explicit block descriptors (else the trained system's are used).
    pub blocks: Option<Vec<BlockDescriptor>>,
    /// Every schedule handed in, in input order.
    pub schedules: Vec<PhaseSchedule>,
    /// The telemetry trace (`--trace-out`, json format).
    pub telemetry: Option<TelemetryReport>,
    /// The robustness report of a fault-injected or degraded run.
    pub robustness: Option<RobustnessReport>,
}

impl Session {
    /// Files classified artifacts into a session. Unlike
    /// [`crate::ArtifactSet`], *every* schedule is kept; for the other
    /// kinds a later artifact replaces an earlier one. Specs and
    /// training data have no cross-artifact rules yet and are ignored.
    pub fn from_artifacts(artifacts: impl IntoIterator<Item = Artifact>) -> Session {
        let mut session = Session::default();
        for artifact in artifacts {
            match artifact {
                Artifact::Trained(t) => session.trained = Some(*t),
                Artifact::Blocks(b) => session.blocks = Some(b),
                Artifact::Schedule(s) => session.schedules.push(s),
                Artifact::Telemetry(t) => session.telemetry = Some(*t),
                Artifact::Robustness(r) => session.robustness = Some(*r),
                Artifact::Spec(_) | Artifact::Training(_) => {}
            }
        }
        session
    }

    /// The block descriptors in force: explicit ones win, else the
    /// trained system's.
    pub fn effective_blocks(&self) -> Option<&[BlockDescriptor]> {
        match (&self.blocks, &self.trained) {
            (Some(b), _) => Some(b),
            (None, Some(t)) => Some(t.blocks()),
            (None, None) => None,
        }
    }

    /// Links the trace's flat ledgers into the typed view the
    /// cross-artifact rules consume. Cheap; an empty model when the
    /// session has no trace.
    pub fn resolve(&self) -> SessionModel {
        let Some(tele) = &self.telemetry else {
            return SessionModel::default();
        };
        let mut model = SessionModel::default();

        for event in &tele.events {
            match event.name.as_str() {
                "optimize.start" => {
                    let Some(solve) = event.field("solve") else {
                        continue;
                    };
                    let s = model.solve_mut(solve as usize);
                    s.budget = event.field("budget");
                    s.declared_phases = event.field("phases").map(|p| p as usize);
                }
                "optimize.phase" => {
                    let Some(solve) = event.field("solve") else {
                        continue;
                    };
                    let step = PhaseStep {
                        seq: event.seq,
                        step: event.field("step").unwrap_or(f64::NAN) as usize,
                        phase: event.field("phase").unwrap_or(f64::NAN) as usize,
                        roi: event.field("roi").unwrap_or(f64::NAN),
                        allocated: event.field("allocated").unwrap_or(f64::NAN),
                        leftover_in: event.field("leftover_in").unwrap_or(f64::NAN),
                        leftover_out: event.field("leftover_out").unwrap_or(f64::NAN),
                        predicted_qos: event.field("predicted_qos").unwrap_or(f64::NAN),
                        predicted_speedup: event.field("predicted_speedup").unwrap_or(f64::NAN),
                        space: event.field("space"),
                        evaluated: event.field("evaluated"),
                    };
                    model.solve_mut(solve as usize).steps.push(step);
                }
                "optimize.plan" => {
                    let Some(solve) = event.field("solve") else {
                        continue;
                    };
                    model.solve_mut(solve as usize).plan = event
                        .field("predicted_speedup")
                        .zip(event.field("predicted_qos"));
                }
                "control.start" => {
                    let Some(session) = event.field("session") else {
                        continue;
                    };
                    let c = model.control_mut(session as usize);
                    c.budget = event.field("budget");
                    c.declared_phases = event.field("phases").map(|p| p as usize);
                }
                "control.step" => {
                    let Some(session) = event.field("session") else {
                        continue;
                    };
                    let step = ControlStep {
                        seq: event.seq,
                        step: event.field("step").unwrap_or(f64::NAN) as usize,
                        phase: event.field("phase").unwrap_or(f64::NAN) as usize,
                        replanned: event.field("replanned").unwrap_or(0.0) != 0.0,
                        reclaimed: event.field("reclaimed").unwrap_or(f64::NAN),
                        redistributed: event.field("redistributed").unwrap_or(f64::NAN),
                    };
                    model.control_mut(session as usize).steps.push(step);
                }
                "control.plan" => {
                    let Some(session) = event.field("session") else {
                        continue;
                    };
                    let c = model.control_mut(session as usize);
                    c.replans = event.field("replans");
                    c.totals = event.field("reclaimed").zip(event.field("redistributed"));
                }
                _ => {}
            }
        }

        for span in &tele.spans {
            if let Some(phase) = bracket_index(&span.path, "optimize/phase[") {
                model.phase_spans.insert(phase, span.count);
            }
        }
        for gauge in &tele.gauges {
            if let Some(phase) = phase_gauge_index(&gauge.name) {
                model.profiled_max_speedup.insert(phase, gauge.max);
            }
        }
        for counter in &tele.counters {
            for (prefix, keys) in [
                ("eval.exec[", &mut model.exec_keys),
                ("eval.hit[", &mut model.hit_keys),
                ("eval.quarantine[", &mut model.quarantine_keys),
                ("eval.golden.exec[", &mut model.golden_keys),
            ] {
                if let Some(digest) = digest_key(&counter.name, prefix) {
                    keys.insert(digest, counter.value);
                }
            }
        }
        model
    }
}

/// The trace's ledgers, linked: solves with their budget and step
/// events, phase-id span counts, per-key evaluation counters, and the
/// profiled per-phase speedup ceilings.
#[derive(Debug, Clone, Default)]
pub struct SessionModel {
    /// Algorithm-2 solves, indexed by solve id.
    pub solves: Vec<Solve>,
    /// Adaptive-controller sessions, indexed by session id.
    pub controls: Vec<ControlSession>,
    /// `optimize/phase[p]` span count per phase id.
    pub phase_spans: BTreeMap<usize, u64>,
    /// Per-key `eval.exec[digest]` counters.
    pub exec_keys: BTreeMap<u64, u64>,
    /// Per-key `eval.hit[digest]` counters.
    pub hit_keys: BTreeMap<u64, u64>,
    /// Per-key `eval.quarantine[digest]` counters (hits on quarantined
    /// keys).
    pub quarantine_keys: BTreeMap<u64, u64>,
    /// Per-key `eval.golden.exec[digest]` counters.
    pub golden_keys: BTreeMap<u64, u64>,
    /// `profile.phase[p].max_speedup` gauge maxima per phase id.
    pub profiled_max_speedup: BTreeMap<usize, f64>,
}

impl SessionModel {
    fn solve_mut(&mut self, id: usize) -> &mut Solve {
        if self.solves.len() <= id {
            self.solves.resize_with(id + 1, Solve::default);
        }
        self.solves[id].id = id;
        &mut self.solves[id]
    }

    fn control_mut(&mut self, id: usize) -> &mut ControlSession {
        if self.controls.len() <= id {
            self.controls.resize_with(id + 1, ControlSession::default);
        }
        self.controls[id].id = id;
        &mut self.controls[id]
    }
}

/// One Algorithm-2 solve reassembled from the event ledger.
#[derive(Debug, Clone, Default)]
pub struct Solve {
    /// The solve id (position of the `optimize.solves` counter when the
    /// solve began).
    pub id: usize,
    /// Total QoS budget from the `optimize.start` root event.
    pub budget: Option<f64>,
    /// Phase count declared by the root event.
    pub declared_phases: Option<usize>,
    /// Per-phase visit steps, in emission (= decreasing-ROI) order.
    pub steps: Vec<PhaseStep>,
    /// `(predicted_speedup, predicted_qos)` of the closing
    /// `optimize.plan` event.
    pub plan: Option<(f64, f64)>,
}

/// One `optimize.phase` event, decoded from its numeric fields.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStep {
    /// The event's trace sequence number (for locations).
    pub seq: u64,
    /// Position in the decreasing-ROI visit order.
    pub step: usize,
    /// The phase visited at this step.
    pub phase: usize,
    /// The phase's ROI at solve time.
    pub roi: f64,
    /// Budget allocated: the proportional share plus rolled-over
    /// leftover.
    pub allocated: f64,
    /// Leftover budget carried into this step.
    pub leftover_in: f64,
    /// Leftover budget carried out of this step.
    pub leftover_out: f64,
    /// The per-phase plan's predicted QoS degradation.
    pub predicted_qos: f64,
    /// The per-phase plan's predicted speedup.
    pub predicted_speedup: f64,
    /// Size of the enumerated configuration space, when stamped.
    pub space: Option<f64>,
    /// Leaf configurations batch-evaluated by the search, when stamped.
    pub evaluated: Option<f64>,
}

/// One adaptive-controller session reassembled from its
/// `control.start`/`control.step`/`control.plan` event ledger.
#[derive(Debug, Clone, Default)]
pub struct ControlSession {
    /// The session id (position of the `control.sessions` counter when
    /// the session began).
    pub id: usize,
    /// Total QoS budget from the `control.start` root event.
    pub budget: Option<f64>,
    /// Phase count declared by the root event.
    pub declared_phases: Option<usize>,
    /// Per-phase control steps, in execution order.
    pub steps: Vec<ControlStep>,
    /// Re-plan count from the closing `control.plan` event.
    pub replans: Option<f64>,
    /// `(reclaimed, redistributed)` totals from the closing
    /// `control.plan` event.
    pub totals: Option<(f64, f64)>,
}

/// One `control.step` event, decoded from its numeric fields.
#[derive(Debug, Clone, Copy)]
pub struct ControlStep {
    /// The event's trace sequence number (for locations).
    pub seq: u64,
    /// Position in the phase walk.
    pub step: usize,
    /// The phase executed at this step.
    pub phase: usize,
    /// Whether a suffix re-plan fired at this step.
    pub replanned: bool,
    /// Budget reclaimed at this step.
    pub reclaimed: f64,
    /// Budget redistributed to the remaining phases at this step.
    pub redistributed: f64,
}

/// Parses the index of `prefix[i]`-shaped names, e.g.
/// `optimize/phase[3]` with prefix `optimize/phase[` yields 3.
fn bracket_index(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)?.strip_suffix(']')?.parse().ok()
}

/// Parses the phase id out of `profile.phase[p].max_speedup`.
fn phase_gauge_index(name: &str) -> Option<usize> {
    name.strip_prefix("profile.phase[")?
        .strip_suffix("].max_speedup")?
        .parse()
        .ok()
}

/// Parses the key digest out of `prefix` + `0x%016x]` counter names.
fn digest_key(name: &str, prefix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(']')?;
    u64::from_str_radix(hex.strip_prefix("0x")?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_core::Telemetry;

    #[test]
    fn resolve_links_events_spans_gauges_and_keys() {
        let t = Telemetry::new();
        t.event(
            "optimize.start",
            &[("solve", 0.0), ("budget", 10.0), ("phases", 2.0)],
        );
        t.event(
            "optimize.phase",
            &[
                ("solve", 0.0),
                ("step", 0.0),
                ("phase", 1.0),
                ("roi", 2.0),
                ("allocated", 6.0),
                ("leftover_in", 0.0),
                ("leftover_out", 1.0),
                ("predicted_qos", 5.0),
                ("predicted_speedup", 1.5),
            ],
        );
        t.event(
            "optimize.plan",
            &[
                ("solve", 0.0),
                ("predicted_speedup", 1.4),
                ("predicted_qos", 5.0),
            ],
        );
        t.span("optimize/phase[1]", || ());
        t.set_gauge("profile.phase[1].max_speedup", 1.8);
        t.incr("eval.exec");
        t.incr("eval.exec[0x00000000000000ff]");
        t.incr("eval.golden.exec[0x00000000000000ff]");

        let session = Session {
            telemetry: Some(t.report()),
            ..Session::default()
        };
        let model = session.resolve();
        assert_eq!(model.solves.len(), 1);
        let solve = &model.solves[0];
        assert_eq!(solve.budget, Some(10.0));
        assert_eq!(solve.declared_phases, Some(2));
        assert_eq!(solve.steps.len(), 1);
        assert_eq!(solve.steps[0].phase, 1);
        assert_eq!(solve.plan, Some((1.4, 5.0)));
        assert_eq!(model.phase_spans.get(&1), Some(&1));
        assert_eq!(model.profiled_max_speedup.get(&1), Some(&1.8));
        assert_eq!(model.exec_keys.get(&0xff), Some(&1));
        assert_eq!(model.golden_keys.get(&0xff), Some(&1));
        assert!(model.hit_keys.is_empty());
    }

    #[test]
    fn from_artifacts_keeps_every_schedule() {
        use opprox_approx_rt::LevelConfig;
        let schedule =
            |iters| PhaseSchedule::new(vec![LevelConfig::accurate(2); 2], iters).unwrap();
        let session = Session::from_artifacts(vec![
            Artifact::Schedule(schedule(10)),
            Artifact::Schedule(schedule(20)),
        ]);
        assert_eq!(session.schedules.len(), 2);
        assert!(session.trained.is_none());
        assert!(session.effective_blocks().is_none());
    }
}
