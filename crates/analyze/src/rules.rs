//! The rule registry and the semantic lint implementations.
//!
//! Every rule has a stable code: `A0xx` rules are semantic lints run by
//! [`crate::analyze`]; `C0xx` rules are concurrency-correctness rules
//! discharged outside this crate (loom model checks, Miri, TSan — see
//! [`RuleKind`]). Each lint states which artifacts it needs and silently
//! passes when the set lacks them; rule `A013` reports when the
//! predictive lints were skipped for lack of inputs.
//!
//! Error-severity model-integrity rules (A004/A007/A012) delegate to
//! [`opprox_core::modeling::AppModels::integrity_issues`] — the same
//! check `TrainedOpprox::load` and the optimizer entry path enforce —
//! and A011 delegates to [`AccuracySpec::try_new`], so the lints cannot
//! drift from the validation the pipeline actually applies.

use crate::artifact::ArtifactSet;
use crate::diag::{Diagnostic, Report, Severity};
use opprox_approx_rt::block::{BlockDescriptor, BlockId};
use opprox_core::modeling::IssueKind;
use opprox_core::AccuracySpec;

/// How a rule is discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// A semantic lint executed by [`crate::analyze`].
    Lint,
    /// An exhaustive loom model check (`crates/core/tests/loom.rs`,
    /// run under `RUSTFLAGS="--cfg loom"` in CI).
    ModelCheck,
    /// A CI job (Miri or ThreadSanitizer) over the pool/evaluator test
    /// subset.
    CiJob,
    /// A cross-artifact audit rule executed by [`crate::audit`]: it
    /// needs two or more linked artifacts of one session, so it cannot
    /// run as a single-artifact lint.
    Audit,
}

/// One registry entry: the stable code, its severity when it fires, and
/// what it checks.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule code (`A001`, ..., `C005`).
    pub code: &'static str,
    /// Severity of the diagnostics the rule emits.
    pub severity: Severity,
    /// How the rule is discharged.
    pub kind: RuleKind,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule, in code order. The `C0xx` entries document the
/// concurrency rules so `opprox analyze` output, DESIGN.md, and CI stay
/// in sync; they emit no diagnostics here.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "A001",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "schedule assigns an approximation level above a block's maximum",
    },
    RuleInfo {
        code: "A002",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "phase configurations disagree on the block count",
    },
    RuleInfo {
        code: "A003",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "expected iteration count is zero (or absurdly large: warning)",
    },
    RuleInfo {
        code: "A004",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "a model coefficient is NaN or infinite",
    },
    RuleInfo {
        code: "A005",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "speedup model predicts < 1.0 for the fully accurate configuration",
    },
    RuleInfo {
        code: "A006",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "a phase has a non-positive or non-finite ROI (breaks the Alg. 2 budget split)",
    },
    RuleInfo {
        code: "A007",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "a confidence band is inverted (negative half-width) or has an invalid level",
    },
    RuleInfo {
        code: "A008",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "schedule is statically infeasible under the spec's budget per the error model",
    },
    RuleInfo {
        code: "A009",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "an approximation level is never covered by any training sample",
    },
    RuleInfo {
        code: "A010",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "a control-flow class is unreachable through the decision tree",
    },
    RuleInfo {
        code: "A011",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "accuracy spec's error budget is negative or non-finite",
    },
    RuleInfo {
        code: "A012",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "model-set shape contradicts its declared dimensions",
    },
    RuleInfo {
        code: "A013",
        severity: Severity::Info,
        kind: RuleKind::Lint,
        summary: "predictive lints (A005/A008) skipped: no inputs available",
    },
    RuleInfo {
        code: "A014",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "degraded training dropped too many samples to trust the fitted models",
    },
    RuleInfo {
        code: "A015",
        severity: Severity::Error,
        kind: RuleKind::Lint,
        summary: "robustness report is internally inconsistent (impossible counter relation)",
    },
    RuleInfo {
        code: "A016",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "a phase's planned speedup is wildly inconsistent with its profiled ceiling",
    },
    RuleInfo {
        code: "A017",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "execution cache hit rate is zero across a non-trivial run",
    },
    RuleInfo {
        code: "A018",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "server trace records admission-control events but zero shed responses",
    },
    RuleInfo {
        code: "A019",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "phase-search pruning statistics are self-inconsistent or degenerate",
    },
    RuleInfo {
        code: "A020",
        severity: Severity::Warn,
        kind: RuleKind::Lint,
        summary: "adaptive controller re-planned more often than it has phases (thrashing)",
    },
    RuleInfo {
        code: "C001",
        severity: Severity::Error,
        kind: RuleKind::ModelCheck,
        summary: "WorkPool submit/steal/shutdown is exactly-once on every interleaving",
    },
    RuleInfo {
        code: "C002",
        severity: Severity::Error,
        kind: RuleKind::ModelCheck,
        summary: "EvalEngine cache insert/hit races lose no results and converge",
    },
    RuleInfo {
        code: "C003",
        severity: Severity::Error,
        kind: RuleKind::CiJob,
        summary: "Miri finds no undefined behaviour in the pool/evaluator test subset",
    },
    RuleInfo {
        code: "C004",
        severity: Severity::Error,
        kind: RuleKind::CiJob,
        summary: "ThreadSanitizer finds no data races in the pool/evaluator test subset",
    },
    RuleInfo {
        code: "C005",
        severity: Severity::Error,
        kind: RuleKind::ModelCheck,
        summary: "a failed evaluation is never memoized or served from the cache",
    },
    RuleInfo {
        code: "C006",
        severity: Severity::Error,
        kind: RuleKind::ModelCheck,
        summary: "sharded execution cache loses no entries under per-shard locking",
    },
    RuleInfo {
        code: "X001",
        severity: Severity::Warn,
        kind: RuleKind::Audit,
        summary: "realized per-phase speedup stays inside the model's observed band",
    },
    RuleInfo {
        code: "X002",
        severity: Severity::Error,
        kind: RuleKind::Audit,
        summary: "optimize.phase ledger conserves the declared QoS budget",
    },
    RuleInfo {
        code: "X003",
        severity: Severity::Error,
        kind: RuleKind::Audit,
        summary: "per-key evaluation counters telescope to their totals",
    },
    RuleInfo {
        code: "X004",
        severity: Severity::Error,
        kind: RuleKind::Audit,
        summary: "span timeline is a well-formed tree matching its aggregates",
    },
    RuleInfo {
        code: "X005",
        severity: Severity::Error,
        kind: RuleKind::Audit,
        summary: "robustness report agrees with the trace it summarizes",
    },
    RuleInfo {
        code: "X006",
        severity: Severity::Error,
        kind: RuleKind::Audit,
        summary: "every schedule is executable against the session's block set",
    },
    RuleInfo {
        code: "X007",
        severity: Severity::Warn,
        kind: RuleKind::Audit,
        summary: "composed plan prediction follows from its per-phase parts",
    },
    RuleInfo {
        code: "X008",
        severity: Severity::Info,
        kind: RuleKind::Audit,
        summary: "audit coverage: reports rules skipped for missing artifacts",
    },
    RuleInfo {
        code: "X009",
        severity: Severity::Error,
        kind: RuleKind::Audit,
        summary: "control.step ledger conserves budget (Σ reclaimed = Σ redistributed)",
    },
];

/// Registry lookup by code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

/// Threshold above which an expected iteration count is reported as
/// absurd (A003 warning): no modeled application runs 10¹² outer
/// iterations; such a value is a unit error or corruption.
pub const ABSURD_ITERS: u64 = 1_000_000_000_000;

/// Accurate-configuration speedup below this triggers A005 (when no
/// known input predicts above it): the accurate run *is* the speedup
/// baseline, so a healthy model predicts ≈ 1.0 there; the margin absorbs
/// regression noise and band clamping at the range edge.
pub const ACCURATE_SPEEDUP_FLOOR: f64 = 0.9;

/// Runs every semantic lint over the set and appends the findings.
pub fn run_all(set: &ArtifactSet, report: &mut Report) {
    lint_schedule_levels(set, report);
    lint_block_count_mismatch(set, report);
    lint_expected_iters(set, report);
    lint_model_integrity(set, report);
    lint_accurate_speedup(set, report);
    lint_phase_roi(set, report);
    lint_schedule_feasibility(set, report);
    lint_training_coverage(set, report);
    lint_unreachable_classes(set, report);
    lint_spec_budget(set, report);
    lint_drop_rate(set, report);
    lint_robustness_consistency(set, report);
    lint_phase_speedup_consistency(set, report);
    lint_cache_hit_rate(set, report);
    lint_admission_control_ledger(set, report);
    lint_search_pruning_ledger(set, report);
    lint_controller_thrashing(set, report);
    report.sort();
}

pub(crate) fn diag(report: &mut Report, code: &'static str, location: String, message: String) {
    let info = rule(code).expect("registered rule code");
    report.push(Diagnostic {
        code,
        severity: info.severity,
        location,
        message,
    });
}

/// A001 — every phase's levels within each block's `0..=max_level`.
/// Needs a schedule and block descriptors. The per-block comparison is
/// the one [`opprox_approx_rt::LevelConfig::validate`] applies.
fn lint_schedule_levels(set: &ArtifactSet, report: &mut Report) {
    let (Some(schedule), Some(blocks)) = (&set.schedule, set.effective_blocks()) else {
        return;
    };
    for (p, cfg) in schedule.configs().iter().enumerate() {
        // Ragged configs are A002's finding; compare the overlap only.
        for (b, block) in blocks.iter().enumerate().take(cfg.num_blocks()) {
            let level = cfg.level(b);
            if level > block.max_level {
                diag(
                    report,
                    "A001",
                    format!("schedule.phase[{p}].block[{}]", BlockId(b)),
                    format!(
                        "level {level} exceeds max level {} of block `{}` ({})",
                        block.max_level, block.name, block.technique
                    ),
                );
            }
        }
    }
}

/// A002 — all phases cover the same blocks, and as many as the
/// descriptors (or trained model set) declare. Needs a schedule.
fn lint_block_count_mismatch(set: &ArtifactSet, report: &mut Report) {
    let Some(schedule) = &set.schedule else {
        return;
    };
    let configs = schedule.configs();
    let Some(first) = configs.first() else {
        diag(
            report,
            "A002",
            "schedule".into(),
            "schedule has no phases".into(),
        );
        return;
    };
    for (p, cfg) in configs.iter().enumerate().skip(1) {
        if cfg.num_blocks() != first.num_blocks() {
            diag(
                report,
                "A002",
                format!("schedule.phase[{p}]"),
                format!(
                    "covers {} blocks but phase 0 covers {}",
                    cfg.num_blocks(),
                    first.num_blocks()
                ),
            );
        }
    }
    if let Some(blocks) = set.effective_blocks() {
        if first.num_blocks() != blocks.len() {
            diag(
                report,
                "A002",
                "schedule.phase[0]".into(),
                format!(
                    "covers {} blocks but {} blocks are declared",
                    first.num_blocks(),
                    blocks.len()
                ),
            );
        }
    }
}

/// A003 — expected iteration count is positive and plausible. Needs a
/// schedule.
fn lint_expected_iters(set: &ArtifactSet, report: &mut Report) {
    let Some(schedule) = &set.schedule else {
        return;
    };
    let iters = schedule.expected_iters();
    if iters == 0 {
        diag(
            report,
            "A003",
            "schedule.expected_iters".into(),
            "expected iteration count is zero; every iteration would fall into \
             a degenerate phase map"
                .into(),
        );
    } else if iters > ABSURD_ITERS {
        // Same rule, lower severity: a huge count is suspicious, not fatal.
        report.push(Diagnostic {
            code: "A003",
            severity: Severity::Warn,
            location: "schedule.expected_iters".into(),
            message: format!(
                "expected iteration count {iters} exceeds {ABSURD_ITERS}; \
                 likely a unit error or corruption"
            ),
        });
    }
}

/// A004 / A007 / A012 — non-finite coefficients, invalid confidence
/// bands, and shape mismatches, straight from
/// [`opprox_core::modeling::AppModels::integrity_issues`]. Needs a
/// trained model set.
fn lint_model_integrity(set: &ArtifactSet, report: &mut Report) {
    let Some(trained) = &set.trained else {
        return;
    };
    for issue in trained.models().integrity_issues() {
        let code = match issue.kind {
            IssueKind::NonFiniteCoefficient => "A004",
            IssueKind::InvalidBand => "A007",
            IssueKind::ShapeMismatch => "A012",
        };
        diag(report, code, issue.location, issue.message);
    }
    if trained.blocks().len() != trained.models().num_blocks() {
        diag(
            report,
            "A012",
            "blocks".into(),
            format!(
                "{} block descriptors for models trained over {} blocks",
                trained.blocks().len(),
                trained.models().num_blocks()
            ),
        );
    }
}

/// A005 — the speedup model must predict ≈ 1.0 for the fully accurate
/// configuration (the accurate run is the baseline). A noisy model can
/// dip below on individual inputs, so the rule fires per phase only when
/// *every* known input predicts below [`ACCURATE_SPEEDUP_FLOOR`]. Needs
/// a trained model set and at least one input ([`ArtifactSet::inputs`]);
/// A013 reports the skip otherwise.
fn lint_accurate_speedup(set: &ArtifactSet, report: &mut Report) {
    let Some(trained) = &set.trained else {
        return;
    };
    if !trained.models().integrity_issues().is_empty() {
        return; // Predictions on corrupt models would be noise.
    }
    let inputs = set.inputs();
    if inputs.is_empty() {
        diag(
            report,
            "A013",
            "models".into(),
            "predictive lint A005 skipped: no training data or registered \
             application to draw inputs from"
                .into(),
        );
        return;
    }
    let accurate = opprox_approx_rt::LevelConfig::accurate(trained.models().num_blocks());
    for phase in 0..trained.models().num_phases() {
        let mut best: Option<f64> = None;
        for input in &inputs {
            let Ok(pred) = trained.models().predict_point(input, phase, &accurate) else {
                continue; // Arity errors surface through A012.
            };
            best = Some(best.map_or(pred.speedup, |b: f64| b.max(pred.speedup)));
        }
        if let Some(best) = best {
            if best < ACCURATE_SPEEDUP_FLOOR {
                diag(
                    report,
                    "A005",
                    format!("models.phase[{phase}].speedup"),
                    format!(
                        "predicts at most {best:.3}x for the fully accurate \
                         configuration across all {} known inputs (expected \
                         ≈ 1.0): the model is miscalibrated",
                        inputs.len()
                    ),
                );
            }
        }
    }
}

/// A006 — every phase ROI positive and finite; Algorithm 2 splits the
/// budget proportionally to ROI, so a bad value poisons the split.
/// Needs a trained model set.
fn lint_phase_roi(set: &ArtifactSet, report: &mut Report) {
    let Some(trained) = &set.trained else {
        return;
    };
    for (c, class) in trained.models().classes().iter().enumerate() {
        for (p, phase) in class.phases.iter().enumerate() {
            if !(phase.roi.is_finite() && phase.roi > 0.0) {
                diag(
                    report,
                    "A006",
                    format!("models.class[{c}].phase[{p}].roi"),
                    format!(
                        "ROI {} is not a positive finite number; the Alg. 2 \
                         ROI-proportional budget split is undefined",
                        phase.roi
                    ),
                );
            }
        }
    }
}

/// A008 — the schedule's summed conservative QoS prediction must fit
/// the spec's budget for at least one known input. Needs a schedule, a
/// spec, a trained model set, and inputs (A013 reports the skip).
fn lint_schedule_feasibility(set: &ArtifactSet, report: &mut Report) {
    let (Some(schedule), Some(spec), Some(trained)) = (&set.schedule, &set.spec, &set.trained)
    else {
        return;
    };
    if !trained.models().integrity_issues().is_empty() {
        return;
    }
    if AccuracySpec::try_new(spec.error_budget()).is_err() {
        return; // A011's finding; a bad budget makes feasibility moot.
    }
    if schedule.num_phases() != trained.models().num_phases()
        || schedule.num_blocks() != trained.models().num_blocks()
        || schedule
            .configs()
            .iter()
            .any(|c| c.num_blocks() != schedule.num_blocks())
    {
        return; // Shape mismatches are A002/A012 findings.
    }
    let inputs = set.inputs();
    if inputs.is_empty() {
        diag(
            report,
            "A013",
            "schedule".into(),
            "predictive lint A008 skipped: no training data or registered \
             application to draw inputs from"
                .into(),
        );
        return;
    }
    let mut best: Option<f64> = None;
    for input in &inputs {
        let mut total = 0.0f64;
        let mut ok = true;
        for (p, cfg) in schedule.configs().iter().enumerate() {
            if cfg.is_accurate() {
                continue;
            }
            match trained.models().predict(input, p, cfg) {
                Ok(pred) => total += pred.qos,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            best = Some(best.map_or(total, |b: f64| b.min(total)));
        }
    }
    if let Some(best) = best {
        if best > spec.error_budget() {
            diag(
                report,
                "A008",
                "schedule".into(),
                format!(
                    "statically infeasible: the trained error model predicts at \
                     least {best:.2} QoS degradation for every known input, over \
                     the spec's budget {:.2}",
                    spec.error_budget()
                ),
            );
        }
    }
}

/// A009 — every approximation level of every block appears in at least
/// one training sample; the local models extrapolate blindly at
/// uncovered levels. Needs training data and block descriptors.
fn lint_training_coverage(set: &ArtifactSet, report: &mut Report) {
    let (Some(training), Some(blocks)) = (&set.training, set.effective_blocks()) else {
        return;
    };
    if training.records.is_empty() {
        return; // Nothing sampled at all is InsufficientData, not a gap.
    }
    for (b, block) in blocks.iter().enumerate() {
        let missing: Vec<u8> = (1..=block.max_level)
            .filter(|&l| {
                !training
                    .records
                    .iter()
                    .any(|r| b < r.config.num_blocks() && r.config.level(b) == l)
            })
            .collect();
        if !missing.is_empty() {
            diag(
                report,
                "A009",
                format!("training.block[{}]", BlockId(b)),
                format!(
                    "levels {missing:?} of block `{}` appear in no training \
                     sample; the local model extrapolates there",
                    block.name
                ),
            );
        }
    }
}

/// A010 — every control-flow class reachable through the decision
/// tree's leaves. Needs a trained model set.
fn lint_unreachable_classes(set: &ArtifactSet, report: &mut Report) {
    let Some(trained) = &set.trained else {
        return;
    };
    let cf = trained.models().control_flow();
    let reachable = cf.reachable_classes();
    for class in 0..cf.num_classes() {
        if !reachable.contains(&class) {
            diag(
                report,
                "A010",
                format!("models.control_flow.class[{class}]"),
                format!(
                    "class {class} (signature {:?}) is predicted by no decision-tree \
                     leaf; its per-phase models can never be selected",
                    cf.signature(class)
                ),
            );
        }
    }
}

/// A011 — the spec's budget through [`AccuracySpec::try_new`], the
/// same validation the pipeline applies. Needs a spec.
fn lint_spec_budget(set: &ArtifactSet, report: &mut Report) {
    let Some(spec) = &set.spec else {
        return;
    };
    if let Err(e) = AccuracySpec::try_new(spec.error_budget()) {
        diag(report, "A011", "spec.error_budget".into(), e.to_string());
    }
}

/// Drop rate above this triggers A014: the paper's modeling claim
/// (cross-validated R² ≥ 0.9) is fitted on the full sampling plan;
/// losing more than a tenth of it leaves the models under-determined in
/// the dropped regions.
pub const MAX_TRUSTED_DROP_RATE: f64 = 0.10;

/// A014 — degraded training must not have dropped so many samples that
/// the fitted models stop being trustworthy. Needs a robustness report
/// that covers training samples.
fn lint_drop_rate(set: &ArtifactSet, report: &mut Report) {
    let Some(rob) = &set.robustness else {
        return;
    };
    if rob.total_samples == 0 {
        return; // No training run covered by this report.
    }
    let rate = rob.drop_rate();
    if rate > MAX_TRUSTED_DROP_RATE {
        diag(
            report,
            "A014",
            "robustness.drop_rate".into(),
            format!(
                "training dropped {}/{} samples ({:.1}% > {:.0}% threshold); \
                 models fitted on the survivors cannot support the R² ≥ 0.9 \
                 modeling claim — retrain or raise the retry budget",
                rob.dropped_samples.len(),
                rob.total_samples,
                100.0 * rate,
                100.0 * MAX_TRUSTED_DROP_RATE,
            ),
        );
    }
    if rob.dropped_inputs > 0 {
        diag(
            report,
            "A014",
            "robustness.dropped_inputs".into(),
            format!(
                "{} input(s) dropped wholesale (their golden runs failed); \
                 the models never saw those regions of the input space",
                rob.dropped_inputs
            ),
        );
    }
}

/// A015 — the report's counters must satisfy the invariants the
/// recovery layer maintains by construction; a violation means the
/// report was corrupted or hand-edited. Needs a robustness report.
fn lint_robustness_consistency(set: &ArtifactSet, report: &mut Report) {
    let Some(rob) = &set.robustness else {
        return;
    };
    if rob.dropped_samples.len() as u64 > rob.total_samples {
        diag(
            report,
            "A015",
            "robustness.dropped_samples".into(),
            format!(
                "{} samples dropped out of only {} requested",
                rob.dropped_samples.len(),
                rob.total_samples
            ),
        );
    }
    if rob.quarantine_hits > 0 && rob.quarantined_keys == 0 {
        diag(
            report,
            "A015",
            "robustness.quarantine_hits".into(),
            format!(
                "{} quarantine hits with zero quarantined keys",
                rob.quarantine_hits
            ),
        );
    }
    if rob.fault_seed.is_none() && rob.injected_faults > 0 {
        diag(
            report,
            "A015",
            "robustness.injected_faults".into(),
            format!(
                "{} faults injected but no fault plan was configured",
                rob.injected_faults
            ),
        );
    }
}

/// A phase's planned speedup may exceed its profiled ceiling by at most
/// this factor before A016 fires: the optimizer interpolates between
/// profiled configurations, so a plan an order of magnitude beyond
/// anything profiling ever measured is model runaway, not interpolation.
pub const A016_SLACK: f64 = 10.0;

/// A016 — every `optimize.phase` event's predicted speedup must be
/// consistent with the profiled per-phase ceiling
/// (`profile.phase[p].max_speedup`): positive, finite, and within
/// [`A016_SLACK`] of the ceiling. Needs a telemetry report carrying both
/// halves (the events and the gauges); traces that lack either — e.g. a
/// model-only `optimize` trace with no profiling — silently pass.
fn lint_phase_speedup_consistency(set: &ArtifactSet, report: &mut Report) {
    let Some(tele) = &set.telemetry else {
        return;
    };
    for event in tele.events_named("optimize.phase") {
        let (Some(phase), Some(pred)) = (event.field("phase"), event.field("predicted_speedup"))
        else {
            continue;
        };
        let phase = phase as usize;
        let location = format!("telemetry.event[{}].optimize.phase[{phase}]", event.seq);
        if !(pred.is_finite() && pred > 0.0) {
            diag(
                report,
                "A016",
                location,
                format!("planned speedup {pred} is not a positive finite number"),
            );
            continue;
        }
        let Some(ceiling) = tele.gauge(&format!("profile.phase[{phase}].max_speedup")) else {
            continue; // No profiling in this trace: nothing to compare.
        };
        if ceiling.max > 0.0 && pred > ceiling.max * A016_SLACK {
            diag(
                report,
                "A016",
                location,
                format!(
                    "planned speedup {pred:.2}x is over {A016_SLACK:.0}× the \
                     {:.2}x ceiling profiling ever measured for phase {phase}; \
                     the phase's model has run away from its training data",
                    ceiling.max
                ),
            );
        }
    }
}

/// Below this many executions a zero hit rate is unremarkable (A017
/// stays silent): tiny runs can legitimately never repeat a
/// configuration.
pub const A017_MIN_EXECUTIONS: u64 = 20;

/// A017 — a non-trivial run with *zero* cache hits means the execution
/// cache is not deduplicating anything: cache keys are misconfigured
/// (e.g. an unstable input digest) or the sweep re-seeds every request.
/// Healthy training runs always hit (the golden self-check re-requests
/// every golden run). Needs a telemetry report.
fn lint_cache_hit_rate(set: &ArtifactSet, report: &mut Report) {
    let Some(tele) = &set.telemetry else {
        return;
    };
    let execs = tele.counter("eval.exec");
    let hits = tele.counter("eval.cache.hit");
    if execs >= A017_MIN_EXECUTIONS && hits == 0 {
        diag(
            report,
            "A017",
            "telemetry.counter[eval.cache.hit]".into(),
            format!(
                "{execs} executions with zero cache hits; every repeated \
                 configuration re-executed — check the cache-key digest \
                 (unstable hashing defeats deduplication entirely)"
            ),
        );
    }
}

/// A018 — `opprox serve` writes one `serve.admission` event per request
/// batch in which load was shed, carrying the shed count, and bumps the
/// `serve.shed` counter once per shed response. Events with a zero
/// counter mean the two halves of the admission ledger disagree: shed
/// responses were recorded as events but never sent (or the counter
/// wiring broke), so clients saw timeouts instead of `overloaded`
/// frames. Needs a telemetry report; non-server traces have no
/// `serve.admission` events and silently pass.
fn lint_admission_control_ledger(set: &ArtifactSet, report: &mut Report) {
    let Some(tele) = &set.telemetry else {
        return;
    };
    let events = tele.events_named("serve.admission");
    if events.is_empty() {
        return;
    }
    let event_shed: f64 = events.iter().map(|e| e.field("shed").unwrap_or(0.0)).sum();
    let counter_shed = tele.counter("serve.shed");
    if event_shed > 0.0 && counter_shed == 0 {
        diag(
            report,
            "A018",
            "telemetry.counter[serve.shed]".into(),
            format!(
                "{} admission-control event(s) record {event_shed:.0} shed \
                 request(s) but the serve.shed counter is zero; the \
                 admission ledger's two halves disagree — shed responses \
                 were never delivered or the counter wiring broke",
                events.len()
            ),
        );
    }
}

/// A019 — the bound-pruned phase search stamps its node accounting on
/// every `optimize.phase` event: the enumerated `space`, nodes `visited`,
/// and the `expanded`/`pruned` split. Two defects are visible from the
/// trace alone. The ledger not balancing (`expanded + pruned != visited`)
/// is impossible by construction, so the artifact is corrupt or the
/// counters were hand-edited. A search over a space past the exhaustive
/// threshold that visited nodes yet pruned *nothing* means the bounds
/// have degenerated to no-ops — the "pruned" search is an exhaustive
/// scan in disguise and the hardware-limited latency claim is void.
/// Needs a telemetry report; events without the search fields (older
/// traces, bare plan events) silently pass.
fn lint_search_pruning_ledger(set: &ArtifactSet, report: &mut Report) {
    let Some(tele) = &set.telemetry else {
        return;
    };
    let limit = opprox_core::optimizer::EXHAUSTIVE_LIMIT as f64;
    for event in tele.events_named("optimize.phase") {
        let (Some(space), Some(visited), Some(expanded), Some(pruned)) = (
            event.field("space"),
            event.field("visited"),
            event.field("expanded"),
            event.field("pruned"),
        ) else {
            continue;
        };
        let location = format!("telemetry.event[{}].optimize.phase", event.seq);
        if expanded + pruned != visited {
            diag(
                report,
                "A019",
                location,
                format!(
                    "search ledger does not balance: {expanded:.0} expanded + \
                     {pruned:.0} pruned != {visited:.0} visited; the counters \
                     hold this identity by construction, so the trace is \
                     corrupt or was edited"
                ),
            );
        } else if space > limit && visited > 0.0 && pruned == 0.0 {
            diag(
                report,
                "A019",
                location,
                format!(
                    "searched a {space:.0}-configuration space (over the \
                     {limit:.0} exhaustive threshold) without pruning a single \
                     subtree; the admissible bounds have degenerated and the \
                     search is an exhaustive scan in disguise"
                ),
            );
        }
    }
}

/// A020 — the adaptive controller walks each phase once and can re-plan
/// at most once per phase visited, so a session whose re-plan count
/// exceeds its declared phase count is thrashing: every drift check
/// fires, each re-plan immediately drifts again, and the controller is
/// churning the optimizer instead of converging on a schedule. The
/// count is taken from both halves of the ledger — `replanned` flags on
/// `control.step` events and the closing `control.plan` summary — so a
/// corrupted summary is caught even when the steps look sane. Needs a
/// telemetry report; traces without controller events silently pass.
fn lint_controller_thrashing(set: &ArtifactSet, report: &mut Report) {
    let Some(tele) = &set.telemetry else {
        return;
    };
    for start in tele.events_named("control.start") {
        let (Some(session), Some(phases)) = (start.field("session"), start.field("phases")) else {
            continue;
        };
        let step_replans: f64 = tele
            .events_named("control.step")
            .iter()
            .filter(|e| e.field("session") == Some(session))
            .map(|e| {
                if e.field("replanned").unwrap_or(0.0) != 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .sum();
        let plan_replans = tele
            .events_named("control.plan")
            .iter()
            .filter(|e| e.field("session") == Some(session))
            .filter_map(|e| e.field("replans"))
            .fold(0.0f64, f64::max);
        let replans = step_replans.max(plan_replans);
        if replans > phases {
            diag(
                report,
                "A020",
                format!("telemetry.event[control.start session={session:.0}]"),
                format!(
                    "controller re-planned {replans:.0} times across {phases:.0} \
                     declared phases; the walk re-plans at most once per phase, \
                     so more re-plans than phases means the drift check fires on \
                     every step and the controller is thrashing instead of \
                     converging"
                ),
            );
        }
    }
}

/// A `BlockDescriptor` list formatted for messages (used by callers
/// building context lines).
pub fn describe_blocks(blocks: &[BlockDescriptor]) -> String {
    blocks
        .iter()
        .enumerate()
        .map(|(i, b)| format!("{}={} (0..={})", BlockId(i), b.name, b.max_level))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_ordered() {
        let codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes unique and in order");
        assert!(rule("A001").is_some());
        assert!(rule("C005").is_some());
        assert!(rule("X001").is_some());
        assert!(rule("Z999").is_none());
    }

    #[test]
    fn every_registered_code_is_catalogued_in_design_md() {
        let design = include_str!("../../../DESIGN.md");
        for r in RULES {
            assert!(
                design.contains(&format!("| {} ", r.code)),
                "{} has no catalog row in DESIGN.md",
                r.code
            );
        }
    }

    #[test]
    fn audit_rules_are_audits_and_only_they_are() {
        for r in RULES {
            assert_eq!(
                r.code.starts_with('X'),
                r.kind == RuleKind::Audit,
                "{}: the X prefix and the Audit kind must coincide",
                r.code
            );
        }
    }

    #[test]
    fn concurrency_rules_are_not_lints() {
        for r in RULES.iter().filter(|r| r.code.starts_with('C')) {
            assert_ne!(
                r.kind,
                RuleKind::Lint,
                "{} is discharged externally",
                r.code
            );
        }
        for r in RULES.iter().filter(|r| r.code.starts_with('A')) {
            assert_eq!(r.kind, RuleKind::Lint, "{} is a lint", r.code);
        }
    }

    #[test]
    fn telemetry_lints_fire_on_seeded_defects_and_pass_healthy_traces() {
        use opprox_core::Telemetry;

        // Healthy: plan within the profiled ceiling, cache hits present.
        let t = Telemetry::new();
        t.set_gauge("profile.phase[0].max_speedup", 1.8);
        t.event(
            "optimize.phase",
            &[("phase", 0.0), ("predicted_speedup", 1.5)],
        );
        for _ in 0..30 {
            t.incr("eval.exec");
        }
        t.incr("eval.cache.hit");
        let set = ArtifactSet {
            telemetry: Some(t.report()),
            ..ArtifactSet::default()
        };
        let mut report = crate::Report::new();
        run_all(&set, &mut report);
        assert_eq!(report.diagnostics().len(), 0, "{:?}", report.diagnostics());

        // Broken: runaway plan (50x vs 1.2x profiled) and zero hits.
        let t = Telemetry::new();
        t.set_gauge("profile.phase[0].max_speedup", 1.2);
        t.event(
            "optimize.phase",
            &[("phase", 0.0), ("predicted_speedup", 50.0)],
        );
        t.event(
            "optimize.phase",
            &[("phase", 1.0), ("predicted_speedup", f64::NAN)],
        );
        for _ in 0..A017_MIN_EXECUTIONS {
            t.incr("eval.exec");
        }
        let set = ArtifactSet {
            telemetry: Some(t.report()),
            ..ArtifactSet::default()
        };
        let mut report = crate::Report::new();
        run_all(&set, &mut report);
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            ["A016", "A016", "A017"],
            "{:?}",
            report.diagnostics()
        );
        assert_eq!(report.warnings(), 3);

        // Below the execution floor, a zero hit rate stays silent, and a
        // plan event with no profiled ceiling has nothing to compare.
        let t = Telemetry::new();
        t.incr("eval.exec");
        t.event(
            "optimize.phase",
            &[("phase", 3.0), ("predicted_speedup", 99.0)],
        );
        let set = ArtifactSet {
            telemetry: Some(t.report()),
            ..ArtifactSet::default()
        };
        let mut report = crate::Report::new();
        run_all(&set, &mut report);
        assert_eq!(report.diagnostics().len(), 0, "{:?}", report.diagnostics());
    }

    #[test]
    fn admission_ledger_lint_fires_only_on_disagreement() {
        use opprox_core::Telemetry;

        // Consistent server trace: shed events with a matching counter.
        let t = Telemetry::new();
        t.event(
            "serve.admission",
            &[("shed", 2.0), ("queue_limit", 4.0), ("queue_depth", 4.0)],
        );
        t.incr("serve.shed");
        t.incr("serve.shed");
        let set = ArtifactSet {
            telemetry: Some(t.report()),
            ..ArtifactSet::default()
        };
        let mut report = crate::Report::new();
        run_all(&set, &mut report);
        assert_eq!(report.diagnostics().len(), 0, "{:?}", report.diagnostics());

        // Broken: events claim sheds, counter never moved.
        let t = Telemetry::new();
        t.event(
            "serve.admission",
            &[("shed", 3.0), ("queue_limit", 4.0), ("queue_depth", 4.0)],
        );
        let set = ArtifactSet {
            telemetry: Some(t.report()),
            ..ArtifactSet::default()
        };
        let mut report = crate::Report::new();
        run_all(&set, &mut report);
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["A018"], "{:?}", report.diagnostics());

        // A non-server trace has no admission events: silent.
        let t = Telemetry::new();
        t.incr("eval.exec");
        let set = ArtifactSet {
            telemetry: Some(t.report()),
            ..ArtifactSet::default()
        };
        let mut report = crate::Report::new();
        run_all(&set, &mut report);
        assert_eq!(report.diagnostics().len(), 0, "{:?}", report.diagnostics());
    }

    #[test]
    fn describe_blocks_renders_positionally() {
        use opprox_approx_rt::block::TechniqueKind;
        let blocks = vec![
            BlockDescriptor::new("a", TechniqueKind::LoopPerforation, 2),
            BlockDescriptor::new("b", TechniqueKind::Memoization, 5),
        ];
        assert_eq!(describe_blocks(&blocks), "AB0=a (0..=2), AB1=b (0..=5)");
    }
}
