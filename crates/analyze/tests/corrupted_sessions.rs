//! The corrupted-session suite: every cross-artifact audit rule
//! (X001–X009) has at least one positive test (a seeded inconsistency
//! it must detect) and one negative test (a healthy session it must
//! stay silent on). The adaptive-controller thrashing lint (A020)
//! rides along because it reads the same `control.*` ledger.
//!
//! The healthy fixture is a *real* session: one engine profiles PSO,
//! the models are fit from that data, and the optimizer solves against
//! them with its telemetry going to the same registry — so the trace,
//! the trained set, the schedule, and the robustness report genuinely
//! come from one run. Corruptions then edit one artifact (the
//! `TelemetryReport`'s fields are public precisely so tests can seed
//! trace defects) and the audit must name the disagreement.
//!
//! A golden-file test pins the rendered text of a fixed synthetic
//! session, and a property test pins the determinism contract: audit
//! JSON is byte-identical across reruns and across engine thread
//! counts.

use std::sync::OnceLock;

use opprox_analyze::{
    audit_session, Artifact, ArtifactSet, Session, Severity, DEFAULT_DRIFT_TOLERANCE,
};
use opprox_approx_rt::{ApproxApp, LevelConfig, PhaseSchedule};
use opprox_apps::pso::Pso;
use opprox_core::modeling::ModelingOptions;
use opprox_core::optimizer::{optimize_traced, Conservatism};
use opprox_core::pipeline::{Opprox, TrainedOpprox};
use opprox_core::sampling::collect_training_data_with;
use opprox_core::telemetry::{CounterStat, SpanRecord, SpanStat};
use opprox_core::{AccuracySpec, RobustnessReport, Telemetry, TelemetryReport};
use opprox_testutil::fixtures::{fast_sampling_plan, prod_input};
use opprox_testutil::trace::TraceCapture;
use proptest::prelude::*;

struct SessionFixture {
    trained: TrainedOpprox,
    telemetry: TelemetryReport,
    robustness: RobustnessReport,
    schedule: PhaseSchedule,
}

/// One real end-to-end session (profile → train → optimize on a shared
/// engine), built once per process and corrupted on clones.
fn run_session(threads: usize) -> SessionFixture {
    let cap = TraceCapture::new();
    let engine = cap.engine(threads);
    let app = Pso::new();
    let plan = fast_sampling_plan(2, 5);
    let data = collect_training_data_with(&engine, &app, &app.representative_inputs(), &plan)
        .expect("fixture profiling succeeds");
    let trained = Opprox::train_from_data(&app, &data, 2, &ModelingOptions::default())
        .expect("fixture training succeeds");
    let opt = optimize_traced(
        trained.models(),
        trained.blocks(),
        &prod_input("PSO"),
        &AccuracySpec::new(10.0),
        100,
        Conservatism::Band,
        Some(engine.telemetry()),
    )
    .expect("fixture optimization succeeds");
    SessionFixture {
        telemetry: engine.telemetry_report(),
        robustness: engine.robustness_report(),
        schedule: opt.schedule,
        trained,
    }
}

fn fixture() -> &'static SessionFixture {
    static CELL: OnceLock<SessionFixture> = OnceLock::new();
    CELL.get_or_init(|| run_session(2))
}

/// The healthy full session as audit input.
fn full_session() -> Session {
    let f = fixture();
    Session {
        trained: Some(f.trained.clone()),
        blocks: None,
        schedules: vec![f.schedule.clone()],
        telemetry: Some(f.telemetry.clone()),
        robustness: Some(f.robustness.clone()),
    }
}

fn codes(session: &Session) -> Vec<&'static str> {
    audit_session(session, DEFAULT_DRIFT_TOLERANCE)
        .diagnostics()
        .iter()
        .map(|d| d.code)
        .collect()
}

fn find<'r>(report: &'r opprox_analyze::Report, code: &str) -> &'r opprox_analyze::Diagnostic {
    report
        .diagnostics()
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{code} fires:\n{}", report.render_text()))
}

/// The blanket negative test: the real session audits completely clean —
/// no errors, no warnings, and (because every artifact is present) no
/// X008 coverage notes either.
#[test]
fn healthy_full_session_audits_clean() {
    let report = audit_session(&full_session(), DEFAULT_DRIFT_TOLERANCE);
    assert_eq!(
        report.diagnostics().len(),
        0,
        "healthy session must audit clean:\n{}",
        report.render_text()
    );
}

// ---- X001: model/trace drift --------------------------------------------

#[test]
fn x001_detects_realized_speedup_outside_the_model_band() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let gauge = tele
        .gauges
        .iter_mut()
        .find(|g| g.name.starts_with("profile.phase[0]"))
        .expect("profiling published a phase-0 ceiling");
    gauge.max *= 10.0;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X001");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.location.contains("profile.phase[0]"), "{}", d.location);
    assert!(d.message.contains("outside"), "{}", d.message);
}

#[test]
fn x001_respects_a_widened_tolerance() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let gauge = tele
        .gauges
        .iter_mut()
        .find(|g| g.name.starts_with("profile.phase[0]"))
        .unwrap();
    gauge.max *= 1.5;
    // 1.5× drift: outside the default 0.25 band, inside a 2.0 band.
    assert!(codes(&session).contains(&"X001"));
    let relaxed = audit_session(&session, 2.0);
    assert!(
        !relaxed.diagnostics().iter().any(|d| d.code == "X001"),
        "{}",
        relaxed.render_text()
    );
}

#[test]
fn x001_detects_a_profiled_phase_the_model_does_not_have() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let mut rogue = tele.gauges[0].clone();
    rogue.name = "profile.phase[7].max_speedup".into();
    rogue.max = 1.5;
    tele.gauges.push(rogue);
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X001");
    assert!(d.message.contains("only"), "{}", d.message);
}

// ---- X002: budget conservation ------------------------------------------

#[test]
fn x002_detects_a_leaked_allocation() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let event = tele
        .events
        .iter_mut()
        .find(|e| e.name == "optimize.phase")
        .expect("the solve left a phase ledger");
    let alloc = event
        .fields
        .iter_mut()
        .find(|f| f.key == "allocated")
        .unwrap();
    alloc.value += 1.0;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X002");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.location.starts_with("trace.event[optimize."),
        "{}",
        d.location
    );
}

#[test]
fn x002_detects_a_phase_visited_twice() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let mut phase_events = tele
        .events
        .iter_mut()
        .filter(|e| e.name == "optimize.phase");
    let first_phase = phase_events
        .next()
        .expect("the solve left a phase ledger")
        .field("phase")
        .unwrap();
    let second = phase_events
        .next()
        .expect("two-phase solve has two ledger events");
    // Repeat the first visit's phase: one phase visited twice, one never.
    second
        .fields
        .iter_mut()
        .find(|f| f.key == "phase")
        .unwrap()
        .value = first_phase;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X002");
    assert!(d.message.contains("visits phase"), "{}", d.message);
}

// ---- X003: counter-ledger consistency -----------------------------------

#[test]
fn x003_detects_a_total_that_does_not_telescope() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let counter = tele
        .counters
        .iter_mut()
        .find(|c| c.name == "eval.exec")
        .expect("the engine executed evaluations");
    counter.value += 1;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X003");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "trace.counter[eval.exec]");
    assert!(d.message.contains("per-key ledger"), "{}", d.message);
}

#[test]
fn x003_detects_a_key_with_both_a_cache_hit_and_a_quarantine_hit() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let key = "0x00000000000000ab";
    for (total, per_key) in [
        ("eval.cache.hit", format!("eval.hit[{key}]")),
        ("eval.quarantine.hit", format!("eval.quarantine[{key}]")),
    ] {
        tele.counters.push(CounterStat {
            name: per_key,
            value: 1,
        });
        match tele.counters.iter_mut().find(|c| c.name == total) {
            Some(c) => c.value += 1,
            None => tele.counters.push(CounterStat {
                name: total.to_string(),
                value: 1,
            }),
        }
    }
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X003");
    assert!(d.location.contains("eval.quarantine[0x"), "{}", d.location);
    assert!(d.message.contains("never memoized"), "{}", d.message);
}

// ---- X004: span-tree well-formedness ------------------------------------

#[test]
fn x004_detects_an_aggregate_that_disagrees_with_the_timeline() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    tele.spans[0].count += 1;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X004");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("occurrences"), "{}", d.message);
}

#[test]
fn x004_detects_partially_overlapping_spans() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let base = tele
        .timeline
        .last()
        .map(|r| r.start_micros + r.duration_micros)
        .unwrap_or(0);
    // Two spans that overlap without nesting — impossible for scoped
    // guards on one call stack. Keep the aggregates consistent so only
    // the overlap fires.
    for (path, start, dur) in [("ghost/a", base + 10, 20), ("ghost/b", base + 20, 20)] {
        tele.timeline.push(SpanRecord {
            path: path.into(),
            start_micros: start,
            duration_micros: dur,
        });
        tele.spans.push(SpanStat {
            path: path.into(),
            count: 1,
            total_micros: dur,
        });
    }
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X004");
    assert!(d.message.contains("partially overlaps"), "{}", d.message);
}

#[test]
fn x004_detects_a_golden_run_executed_twice() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let per_key = tele
        .counters
        .iter_mut()
        .find(|c| c.name.starts_with("eval.golden.exec["))
        .expect("the profiling run executed goldens");
    per_key.value = 2;
    // Keep X003's telescoping satisfied so only the golden-once
    // invariant fires.
    tele.counters
        .iter_mut()
        .find(|c| c.name == "eval.golden.exec")
        .unwrap()
        .value += 1;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X004");
    assert!(d.message.contains("executed 2 times"), "{}", d.message);
    assert!(
        !report.diagnostics().iter().any(|d| d.code == "X003"),
        "telescoping was kept consistent:\n{}",
        report.render_text()
    );
}

#[test]
fn x004_detects_phase_spans_missing_for_ledger_events() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let before = tele.spans.len();
    tele.spans
        .retain(|s| !s.path.starts_with("optimize/phase["));
    assert!(tele.spans.len() < before, "fixture has phase spans");
    tele.timeline
        .retain(|r| !r.path.starts_with("optimize/phase["));
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X004");
    assert!(d.location.contains("optimize/phase["), "{}", d.location);
    assert!(d.message.contains("ledger events"), "{}", d.message);
}

// ---- X005: robustness ↔ trace agreement ---------------------------------

#[test]
fn x005_detects_a_report_that_disagrees_with_the_trace() {
    let mut session = full_session();
    session.robustness.as_mut().unwrap().total_samples += 10;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X005");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "robustness.total_samples");
    assert!(d.message.contains("sampling.requested"), "{}", d.message);
}

#[test]
fn x005_detects_phantom_quarantines() {
    let mut session = full_session();
    session.robustness.as_mut().unwrap().quarantined_keys += 2;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X005");
    assert!(d.message.contains("eval.quarantined"), "{}", d.message);
}

// ---- X006: schedule ↔ model coverage ------------------------------------

#[test]
fn x006_detects_a_schedule_the_blocks_cannot_execute() {
    let mut session = full_session();
    session.schedules.push(
        PhaseSchedule::new(
            vec![LevelConfig::new(vec![9, 0, 0]), LevelConfig::accurate(3)],
            100,
        )
        .unwrap(),
    );
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X006");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "schedule[1].phase[0].block[0]");
    assert!(d.message.contains("level 9"), "{}", d.message);
}

#[test]
fn x006_detects_a_phase_count_mismatch_against_the_model() {
    let mut session = full_session();
    session
        .schedules
        .push(PhaseSchedule::new(vec![LevelConfig::accurate(3); 3], 100).unwrap());
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X006");
    assert!(d.message.contains("3 phases"), "{}", d.message);
}

// ---- X007: plan composition ---------------------------------------------

#[test]
fn x007_detects_a_plan_that_does_not_follow_from_its_parts() {
    let mut session = full_session();
    let tele = session.telemetry.as_mut().unwrap();
    let plan = tele
        .events
        .iter_mut()
        .find(|e| e.name == "optimize.plan")
        .expect("the solve emitted a closing plan event");
    let speedup = plan
        .fields
        .iter_mut()
        .find(|f| f.key == "predicted_speedup")
        .unwrap();
    speedup.value *= 2.0;
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X007");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("composing"), "{}", d.message);
}

// ---- X008: coverage notes -----------------------------------------------

#[test]
fn x008_reports_every_rule_skipped_for_missing_artifacts() {
    let f = fixture();
    let session = Session {
        trained: Some(f.trained.clone()),
        ..Session::default()
    };
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    // No trace, no robustness, no schedule: X001–X005, X007, and X009
    // all skip; X006 skips for want of a schedule.
    assert_eq!((report.errors(), report.warnings()), (0, 0));
    let notes: Vec<&str> = report
        .diagnostics()
        .iter()
        .map(|d| {
            assert_eq!(d.code, "X008");
            assert_eq!(d.severity, Severity::Info);
            d.message.split(' ').next().unwrap()
        })
        .collect();
    assert_eq!(
        notes,
        ["X001", "X002", "X003", "X004", "X005", "X006", "X007", "X009"]
    );
}

#[test]
fn x008_stays_silent_when_every_rule_could_run() {
    assert!(!codes(&full_session()).contains(&"X008"));
}

// ---- X009: controller budget conservation --------------------------------

/// A synthetic adaptive-controller ledger: `phases` declared, one
/// `control.step` per `(reclaimed, redistributed)` entry, and a closing
/// `control.plan` whose `(replans, reclaimed, redistributed)` either
/// follow from the steps (`None`) or are overridden to seed a
/// disagreement.
fn control_session(phases: f64, steps: &[(f64, f64)], plan: Option<(f64, f64, f64)>) -> Session {
    let t = Telemetry::new();
    t.event(
        "control.start",
        &[
            ("session", 0.0),
            ("budget", 10.0),
            ("phases", phases),
            ("tolerance", 0.25),
        ],
    );
    for (i, &(reclaimed, redistributed)) in steps.iter().enumerate() {
        let replanned = if reclaimed != 0.0 || redistributed != 0.0 {
            1.0
        } else {
            0.0
        };
        t.event(
            "control.step",
            &[
                ("session", 0.0),
                ("step", i as f64),
                ("phase", i as f64),
                ("observed_speedup", 1.2),
                ("predicted_speedup", 1.2),
                ("band_lo", 1.0),
                ("band_hi", 1.44),
                ("drift", 0.0),
                ("drifted", replanned),
                ("resegmented", 0.0),
                ("replanned", replanned),
                ("reclaimed", reclaimed),
                ("redistributed", redistributed),
                ("remaining", 10.0 - (i as f64 + 1.0)),
            ],
        );
    }
    let (replans, reclaimed, redistributed) = plan.unwrap_or_else(|| {
        (
            steps.iter().filter(|s| s.0 != 0.0 || s.1 != 0.0).count() as f64,
            steps.iter().map(|s| s.0).sum(),
            steps.iter().map(|s| s.1).sum(),
        )
    });
    t.event(
        "control.plan",
        &[
            ("session", 0.0),
            ("replans", replans),
            ("reclaimed", reclaimed),
            ("redistributed", redistributed),
            ("predicted_speedup", 1.2),
            ("predicted_qos", 5.0),
            ("degraded", 0.0),
        ],
    );
    Session {
        telemetry: Some(t.report()),
        ..Session::default()
    }
}

#[test]
fn x009_detects_a_step_ledger_that_leaks_budget() {
    let session = control_session(3.0, &[(0.0, 0.0), (2.0, 1.0), (0.0, 0.0)], None);
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X009");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "trace.event[control.start session=0]");
    assert!(d.message.contains("leaks budget"), "{}", d.message);
}

#[test]
fn x009_detects_plan_totals_that_disagree_with_the_steps() {
    let session = control_session(
        3.0,
        &[(0.0, 0.0), (1.5, 1.5), (0.0, 0.0)],
        Some((1.0, 9.0, 9.0)),
    );
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X009");
    assert_eq!(d.location, "trace.event[control.plan session=0]");
    assert!(d.message.contains("disagree"), "{}", d.message);
}

#[test]
fn x009_detects_more_steps_than_declared_phases() {
    let session = control_session(1.0, &[(0.0, 0.0), (0.0, 0.0)], None);
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    let d = find(&report, "X009");
    assert!(d.message.contains("at most one"), "{}", d.message);
}

#[test]
fn x009_stays_silent_on_a_balanced_ledger() {
    let session = control_session(3.0, &[(0.0, 0.0), (1.5, 1.5), (0.0, 0.0)], None);
    let report = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    assert!(
        !report.diagnostics().iter().any(|d| d.code == "X009"),
        "{}",
        report.render_text()
    );
    // Only X008 coverage notes for the absent artifacts, nothing louder.
    assert_eq!((report.errors(), report.warnings()), (0, 0));
}

// ---- A020: controller thrashing lint -------------------------------------

/// A020 runs on the single-artifact path (`opprox analyze`), so it is
/// exercised through [`opprox_analyze::analyze`] over an `ArtifactSet`
/// holding the same synthetic trace the X009 tests use.
fn lint_codes(session: &Session) -> Vec<&'static str> {
    let set = ArtifactSet {
        telemetry: session.telemetry.clone(),
        ..ArtifactSet::default()
    };
    opprox_analyze::analyze(&set)
        .diagnostics()
        .iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn a020_detects_a_summary_claiming_more_replans_than_phases() {
    // The steps look sane but the closing summary claims 3 re-plans
    // across 2 phases — thrashing, caught from the summary half alone.
    let session = control_session(2.0, &[(0.0, 0.0), (0.0, 0.0)], Some((3.0, 0.0, 0.0)));
    let set = ArtifactSet {
        telemetry: session.telemetry.clone(),
        ..ArtifactSet::default()
    };
    let report = opprox_analyze::analyze(&set);
    let d = find(&report, "A020");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.location, "telemetry.event[control.start session=0]");
    assert!(d.message.contains("thrashing"), "{}", d.message);
}

#[test]
fn a020_counts_replan_flags_on_the_steps_themselves() {
    // Declared one phase, but two steps each claim a re-plan.
    let session = control_session(1.0, &[(1.0, 1.0), (1.0, 1.0)], None);
    assert!(lint_codes(&session).contains(&"A020"));
}

#[test]
fn a020_stays_silent_when_replans_fit_the_phase_count() {
    let session = control_session(3.0, &[(0.0, 0.0), (1.5, 1.5), (0.0, 0.0)], None);
    assert_eq!(lint_codes(&session), Vec::<&str>::new());
}

// ---- Artifact-set round trip --------------------------------------------

/// `Session::from_artifacts` is what `opprox audit` builds from files:
/// serializing the fixture artifacts and reloading them through the
/// classifier must reproduce the clean audit.
#[test]
fn audit_via_serialized_artifacts_matches_in_memory_session() {
    let f = fixture();
    let artifacts = vec![
        Artifact::from_json(&f.trained.to_json().unwrap()).unwrap(),
        Artifact::from_json(&f.telemetry.to_json()).unwrap(),
        Artifact::from_json(&serde_json::to_string(&f.robustness).unwrap()).unwrap(),
        Artifact::from_json(&serde_json::to_string(&f.schedule).unwrap()).unwrap(),
    ];
    let report = opprox_analyze::audit(artifacts, DEFAULT_DRIFT_TOLERANCE);
    let in_memory = audit_session(&full_session(), DEFAULT_DRIFT_TOLERANCE);
    assert_eq!(report.render_json(), in_memory.render_json());
}

// ---- Determinism ---------------------------------------------------------

/// The determinism contract: the audit of one session renders
/// byte-identical output on every rerun, and a session produced by a
/// 1-thread engine audits to the same bytes as the 2-thread fixture
/// (the traces differ in timing, the verdicts may not).
#[test]
fn audit_is_byte_identical_across_thread_counts_and_reruns() {
    let two = audit_session(&full_session(), DEFAULT_DRIFT_TOLERANCE);
    let again = audit_session(&full_session(), DEFAULT_DRIFT_TOLERANCE);
    assert_eq!(two.render_json(), again.render_json());
    assert_eq!(two.render_text(), again.render_text());
    assert_eq!(two.render_sarif(), again.render_sarif());

    let one = run_session(1);
    let session = Session {
        trained: Some(one.trained),
        blocks: None,
        schedules: vec![one.schedule],
        telemetry: Some(one.telemetry),
        robustness: Some(one.robustness),
    };
    let single = audit_session(&session, DEFAULT_DRIFT_TOLERANCE);
    assert_eq!(single.render_json(), two.render_json());
}

/// A synthetic solve ledger parameterized by the property inputs. The
/// corruption (if any) is deterministic in the inputs, so two builds
/// audit to the same bytes.
fn synthetic_session(budget: f64, qos0: f64, leak: bool) -> Session {
    let t = Telemetry::new();
    t.event(
        "optimize.start",
        &[("solve", 0.0), ("budget", budget), ("phases", 1.0)],
    );
    let allocated = if leak { budget + 1.0 } else { budget };
    let leftover = (allocated - qos0).max(0.0);
    t.event(
        "optimize.phase",
        &[
            ("solve", 0.0),
            ("step", 0.0),
            ("phase", 0.0),
            ("roi", 1.0),
            ("allocated", allocated),
            ("leftover_in", 0.0),
            ("leftover_out", leftover),
            ("predicted_qos", qos0),
            ("predicted_speedup", 1.5),
        ],
    );
    t.span("optimize/phase[0]", || ());
    Session {
        telemetry: Some(t.report()),
        ..Session::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rebuilding the same session twice and auditing each yields
    /// byte-identical JSON, whether or not the ledger is corrupt — and
    /// the corrupt variants are detected every time.
    #[test]
    fn audit_json_is_a_pure_function_of_the_session(
        budget in 1.0f64..50.0,
        qos0 in 0.0f64..60.0,
        leak_bit in 0u8..2,
    ) {
        let leak = leak_bit == 1;
        let a = audit_session(&synthetic_session(budget, qos0, leak), DEFAULT_DRIFT_TOLERANCE);
        let b = audit_session(&synthetic_session(budget, qos0, leak), DEFAULT_DRIFT_TOLERANCE);
        prop_assert_eq!(a.render_json(), b.render_json());
        prop_assert_eq!(a.render_sarif(), b.render_sarif());
        let fired = a.diagnostics().iter().any(|d| d.code == "X002");
        prop_assert_eq!(fired, leak, "budget leak detection is exact: {}", a.render_text());
    }
}
