//! The corrupted-artifact suite: every semantic lint (A001–A015, plus
//! the trace-level A019) has at least one positive test (a seeded defect
//! it must detect) and one negative test (a healthy artifact it must
//! stay silent on).
//!
//! Defects that survive JSON text (ragged configs, negative budgets) are
//! seeded as handcrafted documents; defects that do not (NaN renders as
//! `null`) are seeded by mutating the serialized `Value` tree of a real
//! trained model set in memory and deserializing with
//! [`serde::Deserialize::from_value`].

use opprox_analyze::{analyze, Artifact, ArtifactSet, Severity};
use opprox_approx_rt::{InputParams, LevelConfig, PhaseSchedule};
use opprox_core::fault::DroppedSample;
use opprox_core::pipeline::TrainedOpprox;
use opprox_core::request::OptimizeRequest;
use opprox_core::{AccuracySpec, FailureKind, OpproxError, RobustnessReport};
use opprox_testutil::fixtures::{
    pso_blocks, trained_pso as fixture, trained_pso_from as trained_from,
    trained_pso_value as trained_value,
};
use opprox_testutil::json::{mutate_first_key, mutate_keys, path_mut};
use serde::value::{Number, Value};

fn set_of(artifacts: Vec<Artifact>) -> ArtifactSet {
    let mut set = ArtifactSet::default();
    for a in artifacts {
        set.add(a);
    }
    set
}

fn codes(set: &ArtifactSet) -> Vec<&'static str> {
    analyze(set).diagnostics().iter().map(|d| d.code).collect()
}

/// The blanket negative test: a full, healthy artifact set — real
/// trained models, their training data, an in-range schedule, and a
/// generous spec — produces no errors and no warnings.
#[test]
fn healthy_full_set_is_clean() {
    let (trained, data) = fixture();
    let schedule = PhaseSchedule::new(
        vec![LevelConfig::accurate(3), LevelConfig::new(vec![1, 1, 1])],
        200,
    )
    .unwrap();
    let set = set_of(vec![
        Artifact::Blocks(pso_blocks()),
        Artifact::Schedule(schedule),
        Artifact::Spec(AccuracySpec::new(1000.0)),
        Artifact::Trained(Box::new(trained.clone())),
        Artifact::Training(Box::new(data.clone())),
    ]);
    let report = analyze(&set);
    assert_eq!(
        (report.errors(), report.warnings()),
        (0, 0),
        "healthy artifacts must lint clean:\n{}",
        report.render_text()
    );
}

// ---- A001: level out of bounds ------------------------------------------

#[test]
fn a001_detects_level_above_block_maximum() {
    // Pso's blocks all have max_level 5; the constructor does not check.
    let schedule = PhaseSchedule::new(
        vec![LevelConfig::accurate(3), LevelConfig::new(vec![9, 0, 0])],
        100,
    )
    .unwrap();
    let set = set_of(vec![
        Artifact::Blocks(pso_blocks()),
        Artifact::Schedule(schedule),
    ]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A001")
        .expect("A001 fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "schedule.phase[1].block[AB0]");
    assert!(d.message.contains("level 9"), "{}", d.message);
}

#[test]
fn a001_accepts_levels_at_the_maximum() {
    let schedule = PhaseSchedule::new(vec![LevelConfig::new(vec![5, 5, 5])], 100).unwrap();
    let set = set_of(vec![
        Artifact::Blocks(pso_blocks()),
        Artifact::Schedule(schedule),
    ]);
    assert!(!codes(&set).contains(&"A001"));
}

// ---- A002: cross-phase block-count mismatch -----------------------------

#[test]
fn a002_detects_ragged_phase_configs() {
    // The constructor rejects ragged configs, so this can only arrive via
    // a corrupt serialized file — which must load (leniently) and lint.
    let json = r#"{"configs":[{"levels":[0,0,0]},{"levels":[1]}],"expected_iters":100}"#;
    let set = set_of(vec![Artifact::from_json(json).unwrap()]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A002")
        .expect("A002 fires");
    assert_eq!(d.location, "schedule.phase[1]");
    assert!(
        d.message.contains("covers 1 blocks but phase 0 covers 3"),
        "{}",
        d.message
    );
}

#[test]
fn a002_detects_schedule_narrower_than_declared_blocks() {
    let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(2)], 100).unwrap();
    let set = set_of(vec![
        Artifact::Blocks(pso_blocks()), // 3 blocks declared
        Artifact::Schedule(schedule),   // 2 covered
    ]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A002")
        .expect("A002 fires");
    assert_eq!(d.location, "schedule.phase[0]");
}

#[test]
fn a002_accepts_consistent_block_counts() {
    let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(3); 2], 100).unwrap();
    let set = set_of(vec![
        Artifact::Blocks(pso_blocks()),
        Artifact::Schedule(schedule),
    ]);
    assert!(!codes(&set).contains(&"A002"));
}

// ---- A003: zero / absurd expected iterations ----------------------------

#[test]
fn a003_detects_zero_expected_iters_as_error() {
    let json = r#"{"configs":[{"levels":[0,0,0]}],"expected_iters":0}"#;
    let set = set_of(vec![Artifact::from_json(json).unwrap()]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A003")
        .expect("A003 fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "schedule.expected_iters");
}

#[test]
fn a003_detects_absurd_expected_iters_as_warning() {
    let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(3)], 2_000_000_000_000).unwrap();
    let set = set_of(vec![Artifact::Schedule(schedule)]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A003")
        .expect("A003 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("unit error"), "{}", d.message);
}

#[test]
fn a003_accepts_plausible_expected_iters() {
    let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(3)], 100).unwrap();
    let set = set_of(vec![Artifact::Schedule(schedule)]);
    assert!(!codes(&set).contains(&"A003"));
}

// ---- A004: non-finite model coefficients --------------------------------

#[test]
fn a004_detects_nan_coefficient() {
    // NaN cannot survive a JSON text round-trip (it renders as `null`),
    // so the corruption is seeded on the value tree in memory.
    let mut v = trained_value();
    mutate_first_key(&mut v, "coefficients", |c| {
        let Value::Array(items) = c else {
            panic!("coefficients is an array")
        };
        items[0] = Value::Number(Number::F64(f64::NAN));
    });
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A004")
        .expect("A004 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.location.starts_with("models.class[0]"), "{}", d.location);
    assert!(d.message.contains("NaN"), "{}", d.message);
}

#[test]
fn a004_accepts_finite_coefficients() {
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A004"));
}

// ---- A005: speedup model miscalibrated at the accurate config -----------

#[test]
fn a005_detects_accurate_speedup_below_one() {
    // Clamp every phase's speedup range below 1.0: predictions then top
    // out at 0.3x for the *accurate* configuration, which is the baseline.
    let mut v = trained_value();
    mutate_keys(&mut v, "speedup_range", &mut |r| {
        *r = Value::Array(vec![
            Value::Number(Number::F64(0.1)),
            Value::Number(Number::F64(0.3)),
        ]);
    });
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A005")
        .expect("A005 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.location.contains("speedup"), "{}", d.location);
}

#[test]
fn a005_accepts_calibrated_speedup_model() {
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A005"));
}

// ---- A006: non-positive phase ROI ---------------------------------------

#[test]
fn a006_detects_negative_roi() {
    let mut v = trained_value();
    mutate_keys(&mut v, "roi", &mut |r| {
        *r = Value::Number(Number::F64(-1.0));
    });
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A006")
        .expect("A006 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.location, "models.class[0].phase[0].roi");
    assert!(d.message.contains("budget split"), "{}", d.message);
}

#[test]
fn a006_accepts_positive_roi() {
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A006"));
}

// ---- A007: inverted confidence band -------------------------------------

#[test]
fn a007_detects_negative_half_width() {
    let mut v = trained_value();
    mutate_first_key(&mut v, "half_width", |h| {
        *h = Value::Number(Number::F64(-1.0));
    });
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A007")
        .expect("A007 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("half-width"), "{}", d.message);
}

#[test]
fn a007_accepts_valid_bands() {
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A007"));
}

// ---- A008: statically infeasible schedule -------------------------------

#[test]
fn a008_detects_schedule_over_budget() {
    // Max approximation everywhere against a zero error budget: the
    // trained QoS model predicts strictly positive degradation.
    let schedule = PhaseSchedule::new(vec![LevelConfig::new(vec![5, 5, 5]); 2], 200).unwrap();
    let set = set_of(vec![
        Artifact::Schedule(schedule),
        Artifact::Spec(AccuracySpec::new(0.0)),
        Artifact::Trained(Box::new(fixture().0.clone())),
        Artifact::Training(Box::new(fixture().1.clone())),
    ]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A008")
        .expect("A008 fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "schedule");
    assert!(d.message.contains("infeasible"), "{}", d.message);
}

#[test]
fn a008_accepts_schedule_within_budget() {
    // Fully accurate schedule: zero predicted degradation, any budget fits.
    let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(3); 2], 200).unwrap();
    let set = set_of(vec![
        Artifact::Schedule(schedule),
        Artifact::Spec(AccuracySpec::new(10.0)),
        Artifact::Trained(Box::new(fixture().0.clone())),
        Artifact::Training(Box::new(fixture().1.clone())),
    ]);
    assert!(!codes(&set).contains(&"A008"));
}

// ---- A009: training coverage gaps ---------------------------------------

#[test]
fn a009_detects_levels_no_sample_covers() {
    // Inflate one block's declared max_level beyond what was sampled.
    let mut blocks = pso_blocks();
    blocks[0].max_level = 7;
    let set = set_of(vec![
        Artifact::Blocks(blocks),
        Artifact::Training(Box::new(fixture().1.clone())),
    ]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A009")
        .expect("A009 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.location, "training.block[AB0]");
    assert!(d.message.contains("[6, 7]"), "{}", d.message);
}

#[test]
fn a009_accepts_exhaustively_swept_levels() {
    // The collector's per-block local sweeps cover every level 1..=max.
    let set = set_of(vec![
        Artifact::Blocks(pso_blocks()),
        Artifact::Training(Box::new(fixture().1.clone())),
    ]);
    assert!(!codes(&set).contains(&"A009"));
}

// ---- A010: unreachable control-flow class -------------------------------

#[test]
fn a010_detects_class_no_leaf_predicts() {
    // Append a phantom control-flow class (and duplicate its per-phase
    // models so the shapes still agree): no decision-tree leaf can ever
    // select it.
    let mut v = trained_value();
    let cf_classes = path_mut(&mut v, &["models", "control_flow", "classes"]);
    let phantom_class = {
        let Value::Array(sigs) = cf_classes else {
            panic!("control-flow classes is an array")
        };
        let phantom = sigs.len();
        sigs.push(Value::Array(vec![Value::Number(Number::U64(999))]));
        phantom
    };
    let model_classes = path_mut(&mut v, &["models", "classes"]);
    {
        let Value::Array(models) = model_classes else {
            panic!("model classes is an array")
        };
        let clone = models[0].clone();
        models.push(clone);
    }
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A010")
        .expect("A010 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(
        d.location,
        format!("models.control_flow.class[{phantom_class}]")
    );
    assert_eq!(report.errors(), 0, "shapes agree, so no A012 noise");
}

#[test]
fn a010_accepts_fully_reachable_classes() {
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A010"));
}

// ---- A011: invalid accuracy spec ----------------------------------------

#[test]
fn a011_detects_negative_error_budget() {
    // AccuracySpec::new panics on this, so only a serialized spec can
    // carry it: the artifact loads leniently and the lint reports it.
    let set = set_of(vec![
        Artifact::from_json(r#"{"error_budget":-3.0}"#).unwrap()
    ]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A011")
        .expect("A011 fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "spec.error_budget");
}

#[test]
fn a011_accepts_valid_error_budget() {
    let set = set_of(vec![Artifact::Spec(AccuracySpec::new(12.5))]);
    let report = analyze(&set);
    assert_eq!((report.errors(), report.warnings()), (0, 0));
}

// ---- A012: declared dimensions contradict the model shapes --------------

#[test]
fn a012_detects_dimension_mismatch() {
    let mut v = trained_value();
    *path_mut(&mut v, &["models", "num_phases"]) = Value::Number(Number::U64(5));
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A012")
        .expect("A012 fires");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn a012_accepts_consistent_dimensions() {
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A012"));
}

// ---- A013: predictive lints skipped for lack of inputs ------------------

#[test]
fn a013_reports_predictive_skip_without_inputs() {
    // Unknown app, no training data: A005 cannot draw any input.
    let mut v = trained_value();
    *path_mut(&mut v, &["app_name"]) = Value::String("no-such-app".into());
    let set = set_of(vec![Artifact::Trained(Box::new(trained_from(&v)))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A013")
        .expect("A013 fires");
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(report.errors(), 0);
}

#[test]
fn a013_silent_when_inputs_available() {
    // The app is registered, so representative inputs exist.
    let set = set_of(vec![Artifact::Trained(Box::new(fixture().0.clone()))]);
    assert!(!codes(&set).contains(&"A013"));
}

// ---- A014/A015: robustness reports --------------------------------------

/// One dropped sample per `count`, shaped like a real per-phase sweep
/// loss under injected timeouts.
fn drops(count: usize) -> Vec<DroppedSample> {
    (0..count)
        .map(|i| DroppedSample {
            phase: Some(i % 2),
            levels: vec![1, 0, 0],
            golden: false,
            kind: FailureKind::Timeout,
        })
        .collect()
}

#[test]
fn a014_detects_excessive_drop_rate() {
    let report = RobustnessReport {
        fault_seed: Some(7),
        injected_faults: 20,
        timeouts: 20,
        failed_evaluations: 12,
        quarantined_keys: 12,
        total_samples: 100,
        dropped_samples: drops(12), // 12% > the 10% threshold
        ..RobustnessReport::default()
    };
    let set = set_of(vec![Artifact::Robustness(Box::new(report))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A014")
        .expect("A014 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.location, "robustness.drop_rate");
    assert!(d.message.contains("12/100"), "{}", d.message);
    assert_eq!(report.errors(), 0, "a high drop rate is a warning");
}

#[test]
fn a014_detects_dropped_inputs() {
    let report = RobustnessReport {
        fault_seed: Some(7),
        injected_faults: 3,
        dropped_inputs: 1,
        total_samples: 50,
        ..RobustnessReport::default()
    };
    let set = set_of(vec![Artifact::Robustness(Box::new(report))]);
    let d_codes = codes(&set);
    assert!(d_codes.contains(&"A014"), "{d_codes:?}");
}

#[test]
fn a014_accepts_mild_degradation() {
    // 5% drop rate, no whole-input losses: within tolerance.
    let report = RobustnessReport {
        fault_seed: Some(7),
        injected_faults: 9,
        timeouts: 9,
        retries: 6,
        backoff_ms_accounted: 60,
        failed_evaluations: 5,
        quarantined_keys: 5,
        total_samples: 100,
        dropped_samples: drops(5),
        ..RobustnessReport::default()
    };
    let set = set_of(vec![Artifact::Robustness(Box::new(report))]);
    assert!(!codes(&set).contains(&"A014"));
}

#[test]
fn a015_detects_impossible_counter_relations() {
    // More samples dropped than were ever requested.
    let report = RobustnessReport {
        fault_seed: Some(7),
        total_samples: 3,
        dropped_samples: drops(5),
        ..RobustnessReport::default()
    };
    let set = set_of(vec![Artifact::Robustness(Box::new(report))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A015")
        .expect("A015 fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.location, "robustness.dropped_samples");

    // Quarantine hits against zero quarantined keys.
    let report = RobustnessReport {
        quarantine_hits: 2,
        ..RobustnessReport::default()
    };
    let set = set_of(vec![Artifact::Robustness(Box::new(report))]);
    assert!(codes(&set).contains(&"A015"));

    // Injected faults without a configured plan.
    let report = RobustnessReport {
        fault_seed: None,
        injected_faults: 4,
        ..RobustnessReport::default()
    };
    let set = set_of(vec![Artifact::Robustness(Box::new(report))]);
    assert!(codes(&set).contains(&"A015"));
}

#[test]
fn a015_accepts_a_real_engines_report() {
    // A report produced by the recovery layer itself (not handcrafted)
    // must satisfy its own invariants — and round-trip through the
    // `analyze` classifier as JSON.
    use opprox_core::evaluator::EvalEngine;
    use opprox_core::{FaultPlan, RecoveryPolicy};

    let engine = EvalEngine::with_faults(
        1,
        FaultPlan::seeded(3).timeouts(0.5),
        RecoveryPolicy::default(),
    );
    let app = opprox_apps::Pso::new();
    for i in 0..6 {
        let _ = engine.run(
            &app,
            &InputParams::new(vec![8.0 + f64::from(i), 2.0]),
            &PhaseSchedule::accurate(3),
        );
    }
    let report = engine.robustness_report();
    assert!(report.has_activity(), "the plan must actually fire");
    let json = serde_json::to_string(&report).unwrap();
    let artifact = Artifact::from_json(&json).expect("classified");
    assert_eq!(artifact.kind(), "robustness report");
    let set = set_of(vec![artifact]);
    assert!(!codes(&set).contains(&"A015"), "{:?}", codes(&set));
}

// ---- A019: phase-search pruning ledger ----------------------------------

/// An `optimize.phase` event carrying the pruned search's node
/// accounting, as `optimize_traced` emits it.
fn search_event(t: &opprox_core::Telemetry, space: f64, visited: f64, expanded: f64, pruned: f64) {
    t.event(
        "optimize.phase",
        &[
            ("phase", 0.0),
            ("predicted_speedup", 1.4),
            ("space", space),
            ("visited", visited),
            ("expanded", expanded),
            ("pruned", pruned),
            ("evaluated", expanded),
            ("bound_quality", pruned / visited.max(1.0)),
        ],
    );
}

#[test]
fn a019_detects_unbalanced_search_ledger() {
    // 4 expanded + 3 pruned != 10 visited: impossible by construction, so
    // the trace was corrupted or edited.
    let t = opprox_core::Telemetry::new();
    search_event(&t, 216.0, 10.0, 4.0, 3.0);
    let set = set_of(vec![Artifact::Telemetry(Box::new(t.report()))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A019")
        .expect("A019 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("does not balance"), "{}", d.message);
}

#[test]
fn a019_detects_degenerate_pruning_over_large_space() {
    // A space past the exhaustive threshold scanned node by node with
    // zero pruned subtrees: the bounds have degenerated to no-ops.
    let t = opprox_core::Telemetry::new();
    let space = 2.0 * opprox_core::optimizer::EXHAUSTIVE_LIMIT as f64;
    search_event(&t, space, 40_000.0, 40_000.0, 0.0);
    let set = set_of(vec![Artifact::Telemetry(Box::new(t.report()))]);
    let report = analyze(&set);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "A019")
        .expect("A019 fires");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("exhaustive scan"), "{}", d.message);
}

#[test]
fn a019_silent_on_healthy_and_bare_traces() {
    // Healthy: the ledger balances and the big space was actually pruned.
    let t = opprox_core::Telemetry::new();
    search_event(
        &t,
        2.0 * opprox_core::optimizer::EXHAUSTIVE_LIMIT as f64,
        120.0,
        50.0,
        70.0,
    );
    // Small spaces may legitimately degenerate to a full scan.
    search_event(&t, 216.0, 12.0, 12.0, 0.0);
    // A zero-budget phase solves nothing: all-zero counters, real space.
    search_event(&t, 216.0, 0.0, 0.0, 0.0);
    let set = set_of(vec![Artifact::Telemetry(Box::new(t.report()))]);
    assert!(!codes(&set).contains(&"A019"), "{:?}", codes(&set));

    // A bare plan event without the search fields (older traces) passes.
    let t = opprox_core::Telemetry::new();
    t.event(
        "optimize.phase",
        &[("phase", 0.0), ("predicted_speedup", 1.4)],
    );
    let set = set_of(vec![Artifact::Telemetry(Box::new(t.report()))]);
    assert!(!codes(&set).contains(&"A019"), "{:?}", codes(&set));
}

// ---- Boundary enforcement: load + optimizer reject Error-severity corruption

#[test]
fn trained_load_rejects_corrupt_file() {
    // A negative half-width survives JSON text, so it can reach disk.
    let mut v = trained_value();
    mutate_first_key(&mut v, "half_width", |h| {
        *h = Value::Number(Number::F64(-2.5));
    });
    let dir = std::env::temp_dir().join(format!("opprox-analyze-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.json");
    std::fs::write(&path, v.render_compact()).unwrap();
    let err = TrainedOpprox::load(&path).unwrap_err();
    assert!(
        matches!(err, OpproxError::InvalidModel(_)),
        "load must reject at the boundary: {err}"
    );
    let healthy = dir.join("healthy.json");
    std::fs::write(&healthy, fixture().0.to_json().unwrap()).unwrap();
    assert!(TrainedOpprox::load(&healthy).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn optimizer_rejects_corrupt_model_set() {
    let mut v = trained_value();
    mutate_first_key(&mut v, "coefficients", |c| {
        let Value::Array(items) = c else {
            panic!("coefficients is an array")
        };
        items[0] = Value::Number(Number::F64(f64::INFINITY));
    });
    let corrupt = trained_from(&v);
    let err = OptimizeRequest::new(InputParams::new(vec![20.0, 3.0]), AccuracySpec::new(10.0))
        .run(&corrupt)
        .unwrap_err();
    assert!(
        matches!(err, OpproxError::InvalidModel(_)),
        "the optimizer entry path must reject corrupt models: {err}"
    );
}
