//! Golden-file guard for `opprox audit` text output.
//!
//! The audit's rendered text is part of the CI surface (the audit-smoke
//! job greps it, users diff it across runs), and its determinism is a
//! stated contract. This test pins the bytes a fixed synthetic session
//! renders to against `tests/golden/audit.txt`. The session is built
//! from handcrafted events and counters only — no engine, no clock — so
//! it is identical on every platform.

use opprox_analyze::{audit_session, Session, DEFAULT_DRIFT_TOLERANCE};
use opprox_approx_rt::{LevelConfig, PhaseSchedule};
use opprox_core::Telemetry;
use opprox_testutil::fixtures::pso_blocks;

/// A session seeded with one defect per applicable rule family: an
/// out-of-ROI-order ledger (X002), a non-telescoping counter (X003),
/// ledger events with no matching phase spans (X004), an unexecutable
/// schedule level (X006), and a plan that does not compose (X007).
/// X001/X005 skip (no trained model, no robustness report) as X008
/// coverage notes.
fn fixed_session() -> Session {
    let t = Telemetry::new();
    t.event(
        "optimize.start",
        &[("solve", 0.0), ("budget", 10.0), ("phases", 2.0)],
    );
    t.event(
        "optimize.phase",
        &[
            ("solve", 0.0),
            ("step", 0.0),
            ("phase", 0.0),
            ("roi", 1.0),
            ("allocated", 6.0),
            ("leftover_in", 0.0),
            ("leftover_out", 1.0),
            ("predicted_qos", 5.0),
            ("predicted_speedup", 1.5),
        ],
    );
    t.event(
        "optimize.phase",
        &[
            ("solve", 0.0),
            ("step", 1.0),
            ("phase", 1.0),
            ("roi", 2.0),
            ("allocated", 5.0),
            ("leftover_in", 1.0),
            ("leftover_out", 0.0),
            ("predicted_qos", 5.0),
            ("predicted_speedup", 1.25),
        ],
    );
    t.event(
        "optimize.plan",
        &[
            ("solve", 0.0),
            ("predicted_speedup", 2.0),
            ("predicted_qos", 10.0),
        ],
    );
    t.add("eval.exec", 5);
    t.add("eval.exec[0x00000000000000ff]", 3);
    Session {
        trained: None,
        blocks: Some(pso_blocks()),
        schedules: vec![PhaseSchedule::new(
            vec![LevelConfig::new(vec![9, 0, 0]), LevelConfig::accurate(3)],
            100,
        )
        .unwrap()],
        telemetry: Some(t.report()),
        robustness: None,
    }
}

#[test]
fn audit_text_matches_golden_file() {
    let golden = include_str!("golden/audit.txt");
    let rendered = audit_session(&fixed_session(), DEFAULT_DRIFT_TOLERANCE).render_text();
    assert_eq!(
        rendered, golden,
        "audit text output is a stable interface; if this change is \
         intentional, regenerate tests/golden/audit.txt"
    );
}

/// Regenerates the golden file after an intentional output change:
/// `cargo test -p opprox-analyze --test golden_audit -- --ignored regenerate`
#[test]
#[ignore = "writes the golden file; run explicitly after output changes"]
fn regenerate_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/audit.txt");
    let rendered = audit_session(&fixed_session(), DEFAULT_DRIFT_TOLERANCE).render_text();
    std::fs::write(path, rendered).unwrap();
}

#[test]
fn golden_file_covers_the_expected_rule_families() {
    let golden = include_str!("golden/audit.txt");
    for code in ["X002", "X003", "X004", "X006", "X007", "X008"] {
        assert!(
            golden.contains(code),
            "{code} missing from the golden audit"
        );
    }
}
