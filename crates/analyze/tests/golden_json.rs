//! Golden-file guard for the `--format json` schema.
//!
//! Downstream tooling parses `opprox analyze --format json`; this test
//! pins the rendered bytes of a fixed report against
//! `tests/golden/diagnostics.json`. If the schema must change, update
//! the golden file in the same commit and call it out in the changelog.

use opprox_analyze::{Diagnostic, Report, Severity};

fn fixed_report() -> Report {
    let mut r = Report::new();
    r.push(Diagnostic {
        code: "A003",
        severity: Severity::Warn,
        location: "schedule.expected_iters".into(),
        message: "expected iteration count 2000000000000 exceeds 1000000000000; \
                  likely a unit error or corruption"
            .into(),
    });
    r.push(Diagnostic {
        code: "A001",
        severity: Severity::Error,
        location: "schedule.phase[1].block[AB2]".into(),
        message: "level 9 exceeds max level 5 of block `pbest_update` (loop perforation)".into(),
    });
    r.push(Diagnostic {
        code: "A013",
        severity: Severity::Info,
        location: "models".into(),
        message: "predictive lint A005 skipped: no training data or registered \
                  application to draw inputs from"
            .into(),
    });
    r.sort();
    r
}

#[test]
fn json_schema_matches_golden_file() {
    let golden = include_str!("golden/diagnostics.json");
    let rendered = fixed_report().render_json();
    assert_eq!(
        rendered,
        golden.trim_end(),
        "the JSON diagnostics schema is a stable interface; if this change \
         is intentional, regenerate tests/golden/diagnostics.json"
    );
}

/// Regenerates the golden file after an intentional schema change:
/// `cargo test -p opprox-analyze --test golden_json -- --ignored regenerate`
#[test]
#[ignore = "writes the golden file; run explicitly after schema changes"]
fn regenerate_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diagnostics.json");
    std::fs::write(path, fixed_report().render_json() + "\n").unwrap();
}

#[test]
fn golden_file_is_valid_json_with_expected_keys() {
    let v = serde_json::parse_value(include_str!("golden/diagnostics.json")).unwrap();
    let obj = v.as_object().unwrap();
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["diagnostics", "errors", "warnings"]);
}
