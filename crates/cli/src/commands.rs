//! Implementations of the `opprox` subcommands.
//!
//! This is the Rust equivalent of the paper's runtime workflow (Sec. 4.2):
//! trained models are stored on disk, a job is submitted with a target
//! error budget, the runtime loads the models, finds the best
//! phase-specific approximation settings, and passes them to the job.

use crate::args::ParsedArgs;
use opprox_approx_rt::{ApproxApp, InputParams};
use opprox_core::oracle::phase_agnostic_oracle;
use opprox_core::phases::{find_phase_granularity, PhaseSearchOptions};
use opprox_core::pipeline::{Opprox, TrainedOpprox, TrainingOptions};
use opprox_core::report::percent_less_work;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;
use std::error::Error;

/// The result alias used by every subcommand.
pub type CmdResult = Result<(), Box<dyn Error>>;

/// Dispatches a parsed command line. Output is written to `out` so the
/// commands are testable.
///
/// # Errors
///
/// Returns an error for unknown commands and propagates subcommand
/// failures.
pub fn dispatch(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    match args.command.as_str() {
        "apps" => cmd_apps(out),
        "phases" => cmd_phases(args, out),
        "train" => cmd_train(args, out),
        "optimize" => cmd_optimize(args, out),
        "run" => cmd_run(args, out),
        "oracle" => cmd_oracle(args, out),
        "inspect" => cmd_inspect(args, out),
        "compare" => cmd_compare(args, out),
        "help" => cmd_help(out),
        other => Err(format!("unknown command `{other}`; try `opprox help`").into()),
    }
}

/// Prints the usage summary.
///
/// # Errors
///
/// Propagates write failures.
pub fn cmd_help(out: &mut dyn std::io::Write) -> CmdResult {
    writeln!(
        out,
        "opprox — phase-aware optimization of approximate programs (CGO'17 reproduction)\n\
         \n\
         USAGE: opprox <command> [--flag value]...\n\
         \n\
         COMMANDS\n\
         \x20 apps                                   list the registered applications\n\
         \x20 phases   --app A --input I             run Algorithm 1 (phase-granularity search)\n\
         \x20 train    --app A --out FILE            profile + fit models, save to FILE\n\
         \x20          [--phases N] [--sparse K] [--seed S]\n\
         \x20 optimize --model FILE --input I --budget B\n\
         \x20                                        solve Algorithm 2 (model-only)\n\
         \x20 run      --model FILE --input I --budget B\n\
         \x20                                        validated optimization + real execution\n\
         \x20 oracle   --app A --input I --budget B  phase-agnostic exhaustive baseline\n\
         \x20 inspect  --model FILE                   summarize a trained model\n\
         \x20 compare  --app A --input I --budget B   OPPROX (validated) vs oracle in one shot\n\
         \n\
         Inputs are comma-separated parameter values, e.g. --input 64,2 for\n\
         LULESH (mesh_length, num_regions)."
    )?;
    Ok(())
}

fn lookup_app(name: &str) -> Result<Box<dyn ApproxApp>, Box<dyn Error>> {
    opprox_apps::registry::by_name(name).ok_or_else(|| {
        let names: Vec<String> = opprox_apps::registry::all_apps()
            .iter()
            .map(|a| a.meta().name.clone())
            .collect();
        format!("unknown app `{name}`; available: {}", names.join(", ")).into()
    })
}

fn cmd_apps(out: &mut dyn std::io::Write) -> CmdResult {
    for app in opprox_apps::registry::all_apps() {
        let meta = app.meta();
        writeln!(out, "{}", meta.name)?;
        writeln!(out, "  inputs: {}", meta.input_param_names.join(", "))?;
        for (i, b) in meta.blocks.iter().enumerate() {
            writeln!(
                out,
                "  block {i}: {} — {}, levels 0..={}",
                b.name, b.technique, b.max_level
            )?;
        }
        let examples: Vec<String> = app
            .representative_inputs()
            .iter()
            .take(2)
            .map(|p| {
                p.values()
                    .iter()
                    .map(f64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        writeln!(out, "  example inputs: {}", examples.join(" | "))?;
    }
    Ok(())
}

fn cmd_phases(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let app = lookup_app(args.require("app")?)?;
    let input = InputParams::new(args.require_input("input")?);
    let opts = PhaseSearchOptions {
        probe_configs: args.usize_or("probes", 6)?,
        seed: args.u64_or("seed", 0x9A5E)?,
        ..PhaseSearchOptions::default()
    };
    let n = find_phase_granularity(app.as_ref(), &input, &opts)?;
    writeln!(out, "Algorithm 1 chose {n} phases for {}", app.meta().name)?;
    Ok(())
}

fn training_options(args: &ParsedArgs) -> Result<TrainingOptions, Box<dyn Error>> {
    let phases = args.usize_or("phases", 4)?;
    Ok(TrainingOptions {
        num_phases: Some(phases),
        sampling: SamplingPlan {
            num_phases: phases,
            sparse_samples: args.usize_or("sparse", 36)?,
            whole_run_samples: 0,
            seed: args.u64_or("seed", 11)?,
        },
        ..TrainingOptions::default()
    })
}

fn cmd_train(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let app = lookup_app(args.require("app")?)?;
    let path = args.require("out")?;
    let opts = training_options(args)?;
    writeln!(out, "training OPPROX on {} …", app.meta().name)?;
    let trained = Opprox::train(app.as_ref(), &opts)?;
    for (phase, s_r2, q_r2) in trained.models().accuracy_summary() {
        writeln!(
            out,
            "  phase {phase}: speedup R² {s_r2:.3}, qos R² {q_r2:.3}"
        )?;
    }
    std::fs::write(path, trained.to_json()?)?;
    writeln!(out, "model saved to {path}")?;
    Ok(())
}

fn load_model(args: &ParsedArgs) -> Result<TrainedOpprox, Box<dyn Error>> {
    let path = args.require("model")?;
    let json = std::fs::read_to_string(path)?;
    Ok(TrainedOpprox::from_json(&json)?)
}

fn cmd_optimize(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let trained = load_model(args)?;
    let input = InputParams::new(args.require_input("input")?);
    let spec = AccuracySpec::try_new(args.require_f64("budget")?)?;
    let plan = trained.optimize(&input, &spec)?;
    writeln!(out, "plan for {} (model-only):", trained.app_name())?;
    for (phase, cfg) in plan.schedule.configs().iter().enumerate() {
        writeln!(out, "  phase {}: levels {:?}", phase + 1, cfg.levels())?;
    }
    writeln!(
        out,
        "predicted: {:.2}x speedup, {:.2} QoS degradation (budget {:.2})",
        plan.predicted_speedup,
        plan.predicted_qos,
        spec.error_budget()
    )?;
    Ok(())
}

fn cmd_run(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let trained = load_model(args)?;
    let app = lookup_app(trained.app_name())?;
    let input = InputParams::new(args.require_input("input")?);
    let spec = AccuracySpec::try_new(args.require_f64("budget")?)?;
    let (plan, outcome) = trained.optimize_validated(app.as_ref(), &input, &spec)?;
    writeln!(out, "validated plan for {}:", trained.app_name())?;
    for (phase, cfg) in plan.schedule.configs().iter().enumerate() {
        writeln!(out, "  phase {}: levels {:?}", phase + 1, cfg.levels())?;
    }
    writeln!(
        out,
        "measured: {:.2}x speedup ({:.1}% less work), {:.2} QoS degradation \
         (budget {:.2}), {} outer iterations",
        outcome.speedup,
        percent_less_work(outcome.speedup),
        outcome.qos,
        spec.error_budget(),
        outcome.outer_iters
    )?;
    Ok(())
}

fn cmd_oracle(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let app = lookup_app(args.require("app")?)?;
    let input = InputParams::new(args.require_input("input")?);
    let spec = AccuracySpec::try_new(args.require_f64("budget")?)?;
    let r = phase_agnostic_oracle(app.as_ref(), &input, &spec)?;
    match &r.config {
        Some(cfg) => writeln!(
            out,
            "oracle best (over {} executions): levels {:?} — {:.2}x speedup \
             ({:.1}% less work), {:.2} QoS degradation",
            r.evaluated,
            cfg.levels(),
            r.speedup,
            percent_less_work(r.speedup),
            r.qos
        )?,
        None => writeln!(
            out,
            "oracle found no configuration within budget {:.2} \
             (over {} executions)",
            spec.error_budget(),
            r.evaluated
        )?,
    }
    Ok(())
}

fn cmd_inspect(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let trained = load_model(args)?;
    writeln!(out, "app: {}", trained.app_name())?;
    writeln!(out, "phases: {}", trained.num_phases())?;
    writeln!(
        out,
        "control-flow classes: {}",
        trained.models().control_flow().num_classes()
    )?;
    writeln!(out, "per-phase combined-model cross-validation R²:")?;
    for (phase, s_r2, q_r2) in trained.models().accuracy_summary() {
        writeln!(out, "  phase {phase}: speedup {s_r2:.3}, qos {q_r2:.3}")?;
    }
    Ok(())
}

fn cmd_compare(args: &ParsedArgs, out: &mut dyn std::io::Write) -> CmdResult {
    let app = lookup_app(args.require("app")?)?;
    let input = InputParams::new(args.require_input("input")?);
    let spec = AccuracySpec::try_new(args.require_f64("budget")?)?;
    let opts = training_options(args)?;
    writeln!(out, "training OPPROX on {} …", app.meta().name)?;
    let trained = Opprox::train(app.as_ref(), &opts)?;
    let (_, outcome) = trained.optimize_validated(app.as_ref(), &input, &spec)?;
    let oracle = phase_agnostic_oracle(app.as_ref(), &input, &spec)?;
    writeln!(
        out,
        "OPPROX : {:.1}% less work (measured qos {:.2}, budget {:.2})",
        percent_less_work(outcome.speedup),
        outcome.qos,
        spec.error_budget()
    )?;
    writeln!(
        out,
        "oracle : {:.1}% less work (measured qos {:.2}, over {} executions)",
        percent_less_work(oracle.speedup),
        oracle.qos,
        oracle.evaluated
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn run(parts: &[&str]) -> Result<String, Box<dyn Error>> {
        let args = ParsedArgs::parse(parts.iter().map(|s| s.to_string()))?;
        let mut buf = Vec::new();
        dispatch(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_and_apps_render() {
        let help = run(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
        let apps = run(&["apps"]).unwrap();
        for name in ["LULESH", "FFmpeg", "Bodytrack", "PSO", "CoMD"] {
            assert!(apps.contains(name), "missing {name}");
        }
    }

    #[test]
    fn unknown_command_and_app_are_reported() {
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["phases", "--app", "nosuch", "--input", "1,2"]).is_err());
    }

    #[test]
    fn oracle_runs_end_to_end() {
        let out = run(&[
            "oracle", "--app", "pso", "--input", "16,3", "--budget", "30",
        ])
        .unwrap();
        assert!(out.contains("oracle"), "{out}");
    }

    #[test]
    fn inspect_and_compare_work() {
        let dir = std::env::temp_dir().join("opprox_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso2.json");
        let model_s = model.to_str().unwrap();
        run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        let out = run(&["inspect", "--model", model_s]).unwrap();
        assert!(out.contains("phases: 2"), "{out}");
        let out = run(&[
            "compare", "--app", "pso", "--input", "16,3", "--budget", "20",
            "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        assert!(out.contains("OPPROX :") && out.contains("oracle :"), "{out}");
        std::fs::remove_file(model).ok();
    }

    #[test]
    fn train_optimize_run_round_trip() {
        let dir = std::env::temp_dir().join("opprox_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso.json");
        let model_s = model.to_str().unwrap();
        let out = run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "8",
        ])
        .unwrap();
        assert!(out.contains("model saved"), "{out}");
        let out = run(&[
            "optimize", "--model", model_s, "--input", "16,3", "--budget", "10",
        ])
        .unwrap();
        assert!(out.contains("plan for PSO"), "{out}");
        let out = run(&[
            "run", "--model", model_s, "--input", "16,3", "--budget", "10",
        ])
        .unwrap();
        assert!(out.contains("measured:"), "{out}");
        std::fs::remove_file(model).ok();
    }
}
