//! Implementations of the `opprox` subcommands.
//!
//! This is the Rust equivalent of the paper's runtime workflow (Sec. 4.2):
//! trained models are stored on disk, a job is submitted with a target
//! error budget, the runtime loads the models, finds the best
//! phase-specific approximation settings, and passes them to the job.
//!
//! Every subcommand that executes an application for real builds an
//! [`EvalEngine`] and routes all executions through it; the engine's
//! [`EvalMetrics`] (executions, cache hits, per-stage wall time) are
//! printed at the end.

use crate::args::{ClientOp, Command, OutputFormat, TraceFormat, TraceSpec};
use opprox_analyze::{Artifact, ArtifactSet};
use opprox_approx_rt::{ApproxApp, InputParams};
use opprox_core::api::{AdaptiveParams, ApiRequest, ApiResponse, OptimizeParams, PredictParams};
use opprox_core::control::ControlOptions;
use opprox_core::evaluator::{EvalEngine, EvalMetrics};
use opprox_core::oracle::phase_agnostic_oracle_with;
use opprox_core::phases::{find_phase_granularity_with, PhaseSearchOptions};
use opprox_core::pipeline::{Opprox, TrainedOpprox, TrainingOptions};
use opprox_core::report::percent_less_work;
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::serve::{ServeOptions, ServeState, Server};
use opprox_core::OpproxError;
use opprox_core::{AccuracySpec, DriftInjection, FaultPlan, RecoveryPolicy, TelemetryReport};
use std::error::Error;

/// The result alias used by every subcommand.
pub type CmdResult = Result<(), Box<dyn Error>>;

/// Dispatches a typed command. Output is written to `out` so the
/// commands are testable.
///
/// # Errors
///
/// Propagates subcommand failures.
pub fn dispatch(command: &Command, out: &mut dyn std::io::Write) -> CmdResult {
    match command {
        Command::Apps => cmd_apps(out),
        Command::Phases {
            app,
            input,
            probes,
            seed,
            threads,
            trace,
        } => cmd_phases(app, input, *probes, *seed, *threads, trace, out),
        Command::Train {
            app,
            out: path,
            phases,
            sparse,
            seed,
            threads,
            fault_plan,
            recovery,
            trace,
        } => cmd_train(
            app,
            path,
            *phases,
            *sparse,
            *seed,
            *threads,
            *fault_plan,
            *recovery,
            trace,
            out,
        ),
        Command::Optimize {
            model,
            input,
            budget,
            trace,
        } => cmd_optimize(model, input, *budget, trace, out),
        Command::Run {
            model,
            input,
            budget,
            canary,
            validations,
            threads,
            fault_plan,
            recovery,
            adaptive,
            drift_tolerance,
            resegment,
            inject_drift,
            trace,
        } => cmd_run(
            model,
            input,
            *budget,
            canary.as_deref(),
            *validations,
            *threads,
            *fault_plan,
            *recovery,
            adaptive.then(|| {
                let mut options = ControlOptions {
                    resegment: *resegment,
                    inject: *inject_drift,
                    ..ControlOptions::default()
                };
                if let Some(t) = drift_tolerance {
                    options.drift_tolerance = *t;
                }
                options
            }),
            trace,
            out,
        ),
        Command::Oracle {
            app,
            input,
            budget,
            threads,
            trace,
        } => cmd_oracle(app, input, *budget, *threads, trace, out),
        Command::Inspect { model } => cmd_inspect(model, out),
        Command::Analyze {
            artifacts,
            format,
            deny_warnings,
        } => cmd_analyze(artifacts, *format, *deny_warnings, out),
        Command::Audit {
            artifacts,
            format,
            deny_warnings,
            tolerance,
        } => cmd_audit(artifacts, *format, *deny_warnings, *tolerance, out),
        Command::Compare {
            app,
            input,
            budget,
            phases,
            sparse,
            seed,
            threads,
            fault_plan,
            recovery,
            trace,
        } => cmd_compare(
            app,
            input,
            *budget,
            *phases,
            *sparse,
            *seed,
            *threads,
            *fault_plan,
            *recovery,
            trace,
            out,
        ),
        Command::Serve {
            models,
            addr,
            addr_file,
            threads,
            queue_limit,
            batch_max,
            reload_poll_ms,
            trace,
        } => cmd_serve(
            models,
            addr,
            addr_file.as_deref(),
            *threads,
            *queue_limit,
            *batch_max,
            *reload_poll_ms,
            trace,
            out,
        ),
        Command::Client {
            addr,
            op,
            app,
            input,
            budget,
            phase,
            configs,
            point,
            validate,
            validations,
            max_retries,
            backoff_ms,
            eval_timeout_ms,
            drift_tolerance,
            resegment,
            inject_drift,
        } => cmd_client(
            addr,
            *op,
            &ClientRequest {
                app: app.clone(),
                input: input.clone(),
                budget: *budget,
                phase: *phase,
                configs: configs.clone(),
                point: *point,
                validate: *validate,
                validations: *validations,
                max_retries: *max_retries,
                backoff_ms: *backoff_ms,
                eval_timeout_ms: *eval_timeout_ms,
                drift_tolerance: *drift_tolerance,
                resegment: *resegment,
                inject_drift: *inject_drift,
            },
            out,
        ),
        Command::Trace { file } => cmd_trace_summarize(file, out),
        Command::Help => cmd_help(out),
    }
}

/// Prints the usage summary.
///
/// # Errors
///
/// Propagates write failures.
pub fn cmd_help(out: &mut dyn std::io::Write) -> CmdResult {
    writeln!(
        out,
        "opprox — phase-aware optimization of approximate programs (CGO'17 reproduction)\n\
         \n\
         USAGE: opprox <command> [--flag value]...\n\
         \n\
         COMMANDS\n\
         \x20 apps                                   list the registered applications\n\
         \x20 phases   --app A --input I             run Algorithm 1 (phase-granularity search)\n\
         \x20          [--probes K] [--seed S] [--threads T]\n\
         \x20 train    --app A --out FILE            profile + fit models, save to FILE\n\
         \x20          [--phases N] [--sparse K] [--seed S] [--threads T]\n\
         \x20          [--fault-plan P] [--max-retries R] [--eval-timeout-ms MS]\n\
         \x20 optimize --model FILE --input I --budget B\n\
         \x20                                        solve Algorithm 2 (model-only)\n\
         \x20 run      --model FILE --input I --budget B\n\
         \x20          [--canary C] [--validations V] [--threads T]\n\
         \x20          [--fault-plan P] [--max-retries R] [--eval-timeout-ms MS]\n\
         \x20          [--adaptive true] [--drift-tolerance D] [--resegment false]\n\
         \x20          [--inject-drift phase=P,factor=F[,block=B]]\n\
         \x20                                        validated optimization + real execution;\n\
         \x20                                        --adaptive runs the closed-loop controller\n\
         \x20                                        (mid-run re-optimization on drift)\n\
         \x20 oracle   --app A --input I --budget B  phase-agnostic exhaustive baseline\n\
         \x20          [--threads T]\n\
         \x20 inspect  --model FILE                   summarize a trained model\n\
         \x20 analyze  FILE|DIR...                    lint artifacts (models, schedules, specs,\n\
         \x20          [--format text|json|sarif]     training data); exits nonzero on errors,\n\
         \x20          [--deny warnings]              or on warnings under --deny warnings\n\
         \x20 audit    FILE|DIR...                    cross-artifact session audit: link model,\n\
         \x20          [--format text|json|sarif]     schedules, trace, and robustness report,\n\
         \x20          [--deny warnings]              verify end-to-end invariants (X0xx rules);\n\
         \x20          [--tolerance T]                T widens the X001 drift band (default 0.25)\n\
         \x20 compare  --app A --input I --budget B   OPPROX (validated) vs oracle in one shot\n\
         \x20          [--phases N] [--sparse K] [--seed S] [--threads T]\n\
         \x20          [--fault-plan P] [--max-retries R] [--eval-timeout-ms MS]\n\
         \x20 trace    summarize FILE                  render the human summary of a JSON\n\
         \x20                                          telemetry trace (--trace-out)\n\
         \x20 serve    --model FILE[,FILE...]          serve optimize/predict/health over the\n\
         \x20          [--addr H:P] [--addr-file F]    v1 line-delimited JSON wire protocol;\n\
         \x20          [--threads T] [--queue-limit Q] hot-reloads artifacts on file change,\n\
         \x20          [--batch-max B]                 sheds load past --queue-limit\n\
         \x20          [--reload-poll-ms MS]\n\
         \x20 client   --op health|metrics|optimize|adaptive|predict|shutdown\n\
         \x20          [--addr H:P] [--app A] [--input I] [--budget B]\n\
         \x20          [--phase P] [--configs 0,0,0;1,2,1] [--point true]\n\
         \x20          [--validate true] [--validations V] [--max-retries R]\n\
         \x20          [--backoff-ms MS] [--eval-timeout-ms MS]\n\
         \x20          [--drift-tolerance D] [--resegment false]\n\
         \x20          [--inject-drift phase=P,factor=F[,block=B]]\n\
         \x20                                          send one wire request, print the reply\n\
         \n\
         Inputs are comma-separated parameter values, e.g. --input 64,2 for\n\
         LULESH (mesh_length, num_regions) or --input 64,4,100 for PageRank\n\
         (nodes, out_degree, max_steps); `opprox apps` lists every port with\n\
         its parameters and blocks. --threads bounds the evaluation engine's\n\
         worker pool (default: all cores).\n\
         \n\
         Engine-backed commands (and model-only optimize) also accept\n\
         --trace-out FILE [--trace-format json|chrome|text] to export the\n\
         run's telemetry: spans, counters, gauges, histograms, events.\n\
         The json format round-trips through `opprox analyze` and\n\
         `opprox trace summarize`; chrome loads in chrome://tracing.\n\
         \n\
         --fault-plan injects deterministic faults for robustness testing,\n\
         e.g. seed=42,panic=0.1,timeout=0.05,nan=0.05,poison=0.02,fail_first=1;\n\
         the run then ends with a robustness ledger (retries, drops,\n\
         quarantines). --max-retries and --eval-timeout-ms shape recovery."
    )?;
    Ok(())
}

fn lookup_app(name: &str) -> Result<Box<dyn ApproxApp>, Box<dyn Error>> {
    opprox_apps::registry::by_name(name).ok_or_else(|| {
        let names: Vec<String> = opprox_apps::registry::all_apps()
            .iter()
            .map(|a| a.meta().name.clone())
            .collect();
        Box::new(OpproxError::UnknownApp {
            given: name.to_string(),
            available: names.join(", "),
        }) as Box<dyn Error>
    })
}

/// An engine with an explicit thread count, or one per core.
fn make_engine(threads: Option<usize>) -> EvalEngine {
    make_faulty_engine(threads, None, RecoveryPolicy::default())
}

/// An engine carrying an optional fault-injection plan and an explicit
/// recovery policy (`--fault-plan`, `--max-retries`, `--eval-timeout-ms`).
fn make_faulty_engine(
    threads: Option<usize>,
    plan: Option<FaultPlan>,
    policy: RecoveryPolicy,
) -> EvalEngine {
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    match plan {
        Some(plan) => EvalEngine::with_faults(threads, plan, policy),
        None => EvalEngine::with_recovery(threads, policy),
    }
}

/// Prints the engine's metrics block under a standard header.
fn report_metrics(metrics: &EvalMetrics, out: &mut dyn std::io::Write) -> CmdResult {
    writeln!(out, "{metrics}")?;
    Ok(())
}

/// Prints the robustness ledger when fault injection was configured or
/// any recovery event fired; a clean run on a clean engine stays silent.
fn report_robustness(engine: &EvalEngine, out: &mut dyn std::io::Write) -> CmdResult {
    let report = engine.robustness_report();
    if engine.fault_injection_enabled() || report.has_activity() {
        write!(out, "{report}")?;
    }
    Ok(())
}

/// Exports the command's telemetry to `--trace-out` in the requested
/// format; a no-op without the flag.
fn write_trace(
    trace: &TraceSpec,
    report: &TelemetryReport,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let Some(path) = trace.out.as_deref() else {
        return Ok(());
    };
    let rendered = match trace.format {
        TraceFormat::Json => report.to_json(),
        TraceFormat::Chrome => report.to_chrome_trace(),
        TraceFormat::Text => report.render_text(),
    };
    std::fs::write(path, rendered).map_err(|e| format!("writing trace to {path}: {e}"))?;
    writeln!(out, "trace written to {path}")?;
    Ok(())
}

/// `opprox trace summarize FILE`: render the human summary of a JSON
/// telemetry report captured with `--trace-out` (default format).
fn cmd_trace_summarize(file: &str, out: &mut dyn std::io::Write) -> CmdResult {
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let report = TelemetryReport::from_json(&text).map_err(|e| {
        format!("{file}: {e} (expected a JSON trace written by --trace-out, format json)")
    })?;
    write!(out, "{}", report.render_text())?;
    Ok(())
}

/// Starts the optimization service: loads every artifact, binds the
/// listener, and blocks until a `shutdown` frame (or process signal)
/// ends it. The server's telemetry report is exported to `--trace-out`
/// on the way out, so a serving session can be linted with
/// `opprox analyze` like any other run.
#[allow(clippy::too_many_arguments)]
fn cmd_serve(
    models: &[String],
    addr: &str,
    addr_file: Option<&str>,
    threads: Option<usize>,
    queue_limit: usize,
    batch_max: usize,
    reload_poll_ms: u64,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let options = ServeOptions {
        addr: addr.to_string(),
        threads: threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }),
        queue_limit,
        batch_max,
        reload_poll_ms,
        ..ServeOptions::default()
    };
    let state = std::sync::Arc::new(ServeState::new(options));
    for path in models {
        let app = state.load_artifact(path)?;
        writeln!(out, "loaded `{app}` from {path}")?;
    }
    let server =
        Server::start(std::sync::Arc::clone(&state)).map_err(|e| format!("binding {addr}: {e}"))?;
    writeln!(
        out,
        "listening on {} ({} threads)",
        server.addr(),
        state.options().threads
    )?;
    if let Some(file) = addr_file {
        std::fs::write(file, server.addr().to_string())
            .map_err(|e| format!("writing {file}: {e}"))?;
    }
    out.flush()?;
    server.run_until_shutdown();
    write_trace(trace, &state.telemetry().report(), out)?;
    writeln!(out, "shutdown complete")?;
    Ok(())
}

/// The optimize/predict parameters of one `opprox client` invocation,
/// bundled so `cmd_client` stays below the argument-count lint.
struct ClientRequest {
    app: Option<String>,
    input: Option<Vec<f64>>,
    budget: Option<f64>,
    phase: u64,
    configs: Option<String>,
    point: bool,
    validate: bool,
    validations: Option<u64>,
    max_retries: Option<u64>,
    backoff_ms: Option<u64>,
    eval_timeout_ms: Option<u64>,
    drift_tolerance: Option<f64>,
    resegment: bool,
    inject_drift: Option<DriftInjection>,
}

impl ClientRequest {
    /// Builds the wire request for `op`, reporting missing or malformed
    /// flags through the same [`OpproxError::BadRequest`] variant the
    /// server uses (wire code `bad_request`).
    fn to_api(&self, op: ClientOp) -> Result<ApiRequest, OpproxError> {
        let need = |field: Option<&str>, flag: &str, op_name: &str| match field {
            Some(v) => Ok(v.to_string()),
            None => Err(OpproxError::BadRequest(format!(
                "`opprox client --op {op_name}` needs --{flag}"
            ))),
        };
        match op {
            ClientOp::Health => Ok(ApiRequest::Health),
            ClientOp::Metrics => Ok(ApiRequest::Metrics),
            ClientOp::Shutdown => Ok(ApiRequest::Shutdown),
            ClientOp::Optimize => {
                let app = need(self.app.as_deref(), "app", "optimize")?;
                let input = self.input.clone().ok_or_else(|| {
                    OpproxError::BadRequest("`opprox client --op optimize` needs --input".into())
                })?;
                let budget = self.budget.ok_or_else(|| {
                    OpproxError::BadRequest("`opprox client --op optimize` needs --budget".into())
                })?;
                let mut params = OptimizeParams::new(app, input, budget);
                params.point = self.point;
                params.validate = self.validate;
                params.validation_budget = self.validations;
                params.max_retries = self.max_retries;
                params.backoff_ms = self.backoff_ms;
                params.eval_timeout_ms = self.eval_timeout_ms;
                Ok(ApiRequest::Optimize(params))
            }
            ClientOp::Adaptive => {
                let app = need(self.app.as_deref(), "app", "adaptive")?;
                let input = self.input.clone().ok_or_else(|| {
                    OpproxError::BadRequest("`opprox client --op adaptive` needs --input".into())
                })?;
                let budget = self.budget.ok_or_else(|| {
                    OpproxError::BadRequest("`opprox client --op adaptive` needs --budget".into())
                })?;
                let mut params = AdaptiveParams::new(app, input, budget);
                params.tolerance = self.drift_tolerance;
                params.resegment = self.resegment;
                if let Some(inject) = &self.inject_drift {
                    params.drift_phase = Some(inject.phase as u64);
                    params.drift_factor = Some(inject.factor);
                    params.drift_block = inject.block.map(|b| b as u64);
                }
                params.max_retries = self.max_retries;
                params.backoff_ms = self.backoff_ms;
                params.eval_timeout_ms = self.eval_timeout_ms;
                Ok(ApiRequest::Adaptive(params))
            }
            ClientOp::Predict => {
                let app = need(self.app.as_deref(), "app", "predict")?;
                let input = self.input.clone().ok_or_else(|| {
                    OpproxError::BadRequest("`opprox client --op predict` needs --input".into())
                })?;
                let spec = need(self.configs.as_deref(), "configs", "predict")?;
                let configs = parse_config_rows(&spec)?;
                Ok(ApiRequest::Predict(PredictParams {
                    app,
                    input,
                    phase: self.phase,
                    configs,
                }))
            }
        }
    }
}

/// Parses `--configs` rows: semicolon-separated configurations of
/// comma-separated levels, e.g. `0,0,0;1,2,1`.
fn parse_config_rows(spec: &str) -> Result<Vec<Vec<u64>>, OpproxError> {
    spec.split(';')
        .filter(|row| !row.trim().is_empty())
        .map(|row| {
            row.split(',')
                .map(|cell| {
                    cell.trim().parse::<u64>().map_err(|_| {
                        OpproxError::BadRequest(format!(
                            "--configs level `{cell}` is not a non-negative integer"
                        ))
                    })
                })
                .collect()
        })
        .collect()
}

/// Sends one request to a running server and prints the raw reply
/// frame. Exits nonzero when the server answers with an error frame, so
/// smoke scripts can assert on the exit code alone.
fn cmd_client(
    addr: &str,
    op: ClientOp,
    request: &ClientRequest,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    use std::io::{BufRead, BufReader, Write as IoWrite};
    let req = request.to_api(op)?;
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cloning socket: {e}"))?;
    writer.write_all(req.to_wire().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("reading reply from {addr}: {e}"))?;
    let line = line.trim_end();
    if line.is_empty() {
        return Err(OpproxError::Unavailable(format!(
            "server at {addr} closed the connection without a reply"
        ))
        .into());
    }
    writeln!(out, "{line}")?;
    match ApiResponse::parse(line) {
        Ok(resp) if resp.is_error() => Err("server returned an error frame".into()),
        Ok(_) => Ok(()),
        Err(e) => Err(format!("unparseable reply frame: {e}").into()),
    }
}

fn cmd_apps(out: &mut dyn std::io::Write) -> CmdResult {
    for app in opprox_apps::registry::all_apps() {
        let meta = app.meta();
        writeln!(out, "{}", meta.name)?;
        writeln!(out, "  inputs: {}", meta.input_param_names.join(", "))?;
        for (i, b) in meta.blocks.iter().enumerate() {
            writeln!(
                out,
                "  block {i}: {} — {}, levels 0..={}",
                b.name, b.technique, b.max_level
            )?;
        }
        let examples: Vec<String> = app
            .representative_inputs()
            .iter()
            .take(2)
            .map(|p| {
                p.values()
                    .iter()
                    .map(f64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        writeln!(out, "  example inputs: {}", examples.join(" | "))?;
    }
    Ok(())
}

fn cmd_phases(
    app: &str,
    input: &[f64],
    probes: usize,
    seed: u64,
    threads: Option<usize>,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let app = lookup_app(app)?;
    let input = InputParams::new(input.to_vec());
    let opts = PhaseSearchOptions {
        probe_configs: probes,
        seed,
        ..PhaseSearchOptions::default()
    };
    let engine = make_engine(threads);
    let n = find_phase_granularity_with(&engine, app.as_ref(), &input, &opts)?;
    writeln!(out, "Algorithm 1 chose {n} phases for {}", app.meta().name)?;
    report_metrics(&engine.metrics(), out)?;
    write_trace(trace, &engine.telemetry_report(), out)
}

fn training_options(phases: usize, sparse: usize, seed: u64) -> TrainingOptions {
    TrainingOptions {
        num_phases: Some(phases),
        sampling: SamplingPlan {
            num_phases: phases,
            sparse_samples: sparse,
            whole_run_samples: 0,
            seed,
        },
        ..TrainingOptions::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn cmd_train(
    app: &str,
    path: &str,
    phases: usize,
    sparse: usize,
    seed: u64,
    threads: Option<usize>,
    fault_plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let app = lookup_app(app)?;
    let mut opts = training_options(phases, sparse, seed);
    // One knob bounds both pools: the evaluation engine's execution
    // fan-out and the model-fitting fan-out.
    opts.modeling.threads = threads;
    writeln!(out, "training OPPROX on {} …", app.meta().name)?;
    let engine = make_faulty_engine(threads, fault_plan, recovery);
    let trained = Opprox::train_with(&engine, app.as_ref(), &opts)?;
    for (phase, s_r2, q_r2) in trained.models().accuracy_summary() {
        writeln!(
            out,
            "  phase {phase}: speedup R² {s_r2:.3}, qos R² {q_r2:.3}"
        )?;
    }
    writeln!(
        out,
        "golden-iteration estimator: {:.1}% mean relative error",
        trained.golden_iter_rel_error() * 100.0
    )?;
    std::fs::write(path, trained.to_json()?)?;
    writeln!(out, "model saved to {path}")?;
    report_metrics(&engine.metrics(), out)?;
    report_robustness(&engine, out)?;
    write!(out, "{}", trained.modeling_metrics())?;
    write_trace(trace, &engine.telemetry_report(), out)?;
    Ok(())
}

/// Loads a trained model through [`TrainedOpprox::load`], which rejects
/// Error-severity corruption (rules A004/A007/A012) at the boundary.
fn load_model(path: &str) -> Result<TrainedOpprox, Box<dyn Error>> {
    Ok(TrainedOpprox::load(path)?)
}

fn cmd_optimize(
    model: &str,
    input: &[f64],
    budget: f64,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let trained = load_model(model)?;
    let input = InputParams::new(input.to_vec());
    let spec = AccuracySpec::try_new(budget)?;
    let outcome = OptimizeRequest::new(input, spec).run(&trained)?;
    writeln!(out, "plan for {} (model-only):", trained.app_name())?;
    for (phase, cfg) in outcome.plan.schedule.configs().iter().enumerate() {
        writeln!(out, "  phase {}: levels {:?}", phase + 1, cfg.levels())?;
    }
    writeln!(
        out,
        "predicted: {:.2}x speedup, {:.2} QoS degradation (budget {:.2})",
        outcome.plan.predicted_speedup,
        outcome.plan.predicted_qos,
        spec.error_budget()
    )?;
    write_trace(trace, &outcome.telemetry, out)?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn cmd_run(
    model: &str,
    input: &[f64],
    budget: f64,
    canary: Option<&[f64]>,
    validations: usize,
    threads: Option<usize>,
    fault_plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    adaptive: Option<ControlOptions>,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let trained = load_model(model)?;
    let app = lookup_app(trained.app_name())?;
    let input = InputParams::new(input.to_vec());
    let spec = AccuracySpec::try_new(budget)?;
    let engine = make_faulty_engine(threads, fault_plan, recovery);
    let mut request = OptimizeRequest::new(input, spec)
        .validate_on(app.as_ref())
        .validation_budget(validations)
        .engine(&engine);
    if let Some(canary) = canary {
        request = request.canary(InputParams::new(canary.to_vec()));
    }
    if let Some(options) = adaptive {
        request = request.adaptive(options);
    }
    let outcome = request.run(&trained)?;
    if let Some(control) = &outcome.control {
        writeln!(
            out,
            "adaptive session for {} ({} steps, {} re-plans):",
            trained.app_name(),
            control.steps.len(),
            control.replans
        )?;
        for step in &control.steps {
            writeln!(
                out,
                "  step {}: phase {} observed {:.3}x vs band [{:.3}, {:.3}], drift {:.3}{}{}{}",
                step.step,
                step.phase,
                step.observed_speedup,
                step.band_lo,
                step.band_hi,
                step.drift,
                if step.resegmented {
                    " [re-segmented]"
                } else {
                    ""
                },
                if step.replanned { " [re-planned]" } else { "" },
                if step.budget_reclaimed > 0.0 {
                    format!(
                        " (reclaimed {:.3}, redistributed {:.3})",
                        step.budget_reclaimed, step.budget_redistributed
                    )
                } else {
                    String::new()
                },
            )?;
        }
        if control.degraded {
            writeln!(out, "  degraded: faults forced the accurate fallback")?;
        }
    }
    writeln!(
        out,
        "validated plan for {} ({:?} path, {} candidates tried):",
        trained.app_name(),
        outcome.path,
        outcome.candidates_tried
    )?;
    for (phase, cfg) in outcome.plan.schedule.configs().iter().enumerate() {
        writeln!(out, "  phase {}: levels {:?}", phase + 1, cfg.levels())?;
    }
    match outcome.measured {
        Some(measured) => writeln!(
            out,
            "measured: {:.2}x speedup ({:.1}% less work), {:.2} QoS degradation \
             (budget {:.2}), {} outer iterations",
            measured.speedup,
            percent_less_work(measured.speedup),
            measured.qos,
            spec.error_budget(),
            measured.outer_iters
        )?,
        // Degraded mode: validation fell back to the model-only path
        // (possible when fault injection keeps failing the golden run).
        None => writeln!(
            out,
            "measured: unavailable (validation degraded to the model-only path); \
             predicted {:.2}x speedup, {:.2} QoS degradation",
            outcome.plan.predicted_speedup, outcome.plan.predicted_qos
        )?,
    }
    report_metrics(&engine.metrics(), out)?;
    report_robustness(&engine, out)?;
    write_trace(trace, &outcome.telemetry, out)
}

fn cmd_oracle(
    app: &str,
    input: &[f64],
    budget: f64,
    threads: Option<usize>,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let app = lookup_app(app)?;
    let input = InputParams::new(input.to_vec());
    let spec = AccuracySpec::try_new(budget)?;
    let engine = make_engine(threads);
    let r = phase_agnostic_oracle_with(&engine, app.as_ref(), &input, &spec)?;
    match &r.config {
        Some(cfg) => writeln!(
            out,
            "oracle best (over {} executions): levels {:?} — {:.2}x speedup \
             ({:.1}% less work), {:.2} QoS degradation",
            r.evaluated,
            cfg.levels(),
            r.speedup,
            percent_less_work(r.speedup),
            r.qos
        )?,
        None => writeln!(
            out,
            "oracle found no configuration within budget {:.2} \
             (over {} executions)",
            spec.error_budget(),
            r.evaluated
        )?,
    }
    report_metrics(&engine.metrics(), out)?;
    write_trace(trace, &engine.telemetry_report(), out)
}

fn cmd_inspect(model: &str, out: &mut dyn std::io::Write) -> CmdResult {
    let trained = load_model(model)?;
    writeln!(out, "app: {}", trained.app_name())?;
    writeln!(out, "phases: {}", trained.num_phases())?;
    writeln!(
        out,
        "control-flow classes: {}",
        trained.models().control_flow().num_classes()
    )?;
    writeln!(
        out,
        "golden-iteration estimator: {:.1}% mean relative error",
        trained.golden_iter_rel_error() * 100.0
    )?;
    writeln!(out, "per-phase combined-model cross-validation R²:")?;
    for (phase, s_r2, q_r2) in trained.models().accuracy_summary() {
        writeln!(out, "  phase {phase}: speedup {s_r2:.3}, qos {q_r2:.3}")?;
    }
    Ok(())
}

/// `opprox analyze`: classify each file by shape, run every semantic
/// lint over the combination, render the report, and fail on errors (or
/// on warnings under `--deny warnings`) so CI and scripts can gate on
/// the exit status. The report is printed *before* the failure is
/// returned — the findings are the point, not the exit code.
fn cmd_analyze(
    artifacts: &[String],
    format: OutputFormat,
    deny_warnings: bool,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let mut set = ArtifactSet::default();
    for path in expand_artifact_paths(artifacts)? {
        let (artifact, _) = load_artifact(&path)?;
        if let Some(kind) = set.add(artifact) {
            writeln!(out, "note: {path} replaces an earlier {kind} artifact")?;
        }
    }
    let report = opprox_analyze::analyze(&set);
    render_report(&report, format, out)?;
    fail_on_findings(&report, deny_warnings, "analysis")
}

/// `opprox audit`: classify every file of the session, link the
/// artifacts, run the cross-artifact `X0xx` rules, render, and gate the
/// exit status like `analyze` does. Unlike `analyze`, every schedule in
/// the session is kept (a run emits many candidates), so nothing is
/// replaced.
fn cmd_audit(
    artifacts: &[String],
    format: OutputFormat,
    deny_warnings: bool,
    tolerance: f64,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let mut loaded = Vec::new();
    for path in expand_artifact_paths(artifacts)? {
        loaded.push(load_artifact(&path)?.0);
    }
    let report = opprox_analyze::audit(loaded, tolerance);
    render_report(&report, format, out)?;
    fail_on_findings(&report, deny_warnings, "audit")
}

/// Expands each path that names a directory into its `*.json` entries,
/// in file-name order, so `opprox audit session-dir/` works on a whole
/// `--trace-out` + model + report dump. Plain file paths pass through
/// untouched (they may be any kind; only directories are filtered to
/// `.json`).
fn expand_artifact_paths(paths: &[String]) -> Result<Vec<String>, Box<dyn Error>> {
    let mut expanded = Vec::new();
    for path in paths {
        if std::fs::metadata(path).map(|m| m.is_dir()).unwrap_or(false) {
            let mut entries: Vec<String> = std::fs::read_dir(path)
                .map_err(|e| format!("reading directory {path}: {e}"))?
                .filter_map(|entry| {
                    let p = entry.ok()?.path();
                    (p.extension().is_some_and(|ext| ext == "json"))
                        .then(|| p.to_string_lossy().into_owned())
                })
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("directory {path} contains no .json artifacts").into());
            }
            expanded.extend(entries);
        } else {
            expanded.push(path.clone());
        }
    }
    Ok(expanded)
}

/// Reads and classifies one artifact file.
fn load_artifact(path: &str) -> Result<(Artifact, String), Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let artifact = Artifact::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((artifact, path.to_string()))
}

fn render_report(
    report: &opprox_analyze::Report,
    format: OutputFormat,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    match format {
        OutputFormat::Text => write!(out, "{}", report.render_text())?,
        OutputFormat::Json => writeln!(out, "{}", report.render_json())?,
        OutputFormat::Sarif => writeln!(out, "{}", report.render_sarif())?,
    }
    Ok(())
}

/// The shared exit-status gate: errors always fail, warnings fail under
/// `--deny warnings`. The report has already been printed — the
/// findings are the point, not the exit code.
fn fail_on_findings(report: &opprox_analyze::Report, deny_warnings: bool, what: &str) -> CmdResult {
    let (errors, warnings) = (report.errors(), report.warnings());
    if errors > 0 {
        return Err(format!(
            "{what} found {errors} error{}",
            if errors == 1 { "" } else { "s" }
        )
        .into());
    }
    if deny_warnings && warnings > 0 {
        return Err(format!(
            "{what} found {warnings} warning{} (denied by --deny warnings)",
            if warnings == 1 { "" } else { "s" }
        )
        .into());
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn cmd_compare(
    app: &str,
    input: &[f64],
    budget: f64,
    phases: usize,
    sparse: usize,
    seed: u64,
    threads: Option<usize>,
    fault_plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    trace: &TraceSpec,
    out: &mut dyn std::io::Write,
) -> CmdResult {
    let app = lookup_app(app)?;
    let input = InputParams::new(input.to_vec());
    let spec = AccuracySpec::try_new(budget)?;
    let opts = training_options(phases, sparse, seed);
    writeln!(out, "training OPPROX on {} …", app.meta().name)?;
    // One engine end to end: the oracle sweep reuses any whole-run
    // configurations the training or validation phases already executed.
    let engine = make_faulty_engine(threads, fault_plan, recovery);
    let trained = Opprox::train_with(&engine, app.as_ref(), &opts)?;
    let outcome = OptimizeRequest::new(input.clone(), spec)
        .validate_on(app.as_ref())
        .engine(&engine)
        .run(&trained)?;
    let oracle = phase_agnostic_oracle_with(&engine, app.as_ref(), &input, &spec)?;
    match outcome.measured {
        Some(measured) => writeln!(
            out,
            "OPPROX : {:.1}% less work (measured qos {:.2}, budget {:.2})",
            percent_less_work(measured.speedup),
            measured.qos,
            spec.error_budget()
        )?,
        None => writeln!(
            out,
            "OPPROX : validation degraded to the model-only path \
             (predicted {:.1}% less work)",
            percent_less_work(outcome.plan.predicted_speedup)
        )?,
    }
    writeln!(
        out,
        "oracle : {:.1}% less work (measured qos {:.2}, over {} executions)",
        percent_less_work(oracle.speedup),
        oracle.qos,
        oracle.evaluated
    )?;
    report_metrics(&engine.metrics(), out)?;
    report_robustness(&engine, out)?;
    // One engine end to end means one trace covering training, the
    // validated optimization, and the oracle sweep.
    write_trace(trace, &engine.telemetry_report(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn run(parts: &[&str]) -> Result<String, Box<dyn Error>> {
        let command = Command::parse(parts.iter().map(|s| s.to_string()))?;
        let mut buf = Vec::new();
        dispatch(&command, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn serve_and_client_round_trip_over_tcp() {
        let dir = std::env::temp_dir().join("opprox_cli_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso_serve.json");
        let model_s = model.to_str().unwrap().to_string();
        run(&[
            "train", "--app", "pso", "--out", &model_s, "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        let addr_file = dir.join("addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        let trace = dir.join("serve_trace.json");
        let serve_args: Vec<String> = [
            "serve",
            "--model",
            &model_s,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--threads",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let command = Command::parse(serve_args).unwrap();
            let mut buf = Vec::new();
            dispatch(&command, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        let addr = {
            let mut waited = 0;
            loop {
                match std::fs::read_to_string(&addr_file) {
                    Ok(s) if !s.is_empty() => break s,
                    _ => {
                        assert!(waited < 30_000, "server never wrote its address");
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        waited += 50;
                    }
                }
            }
        };
        let health = run(&["client", "--addr", &addr, "--op", "health"]).unwrap();
        assert!(health.contains("\"kind\":\"health\""), "{health}");
        assert!(health.contains("pso"), "{health}");
        let pred = run(&[
            "client",
            "--addr",
            &addr,
            "--op",
            "predict",
            "--app",
            "pso",
            "--input",
            "16,3",
            "--phase",
            "0",
            "--configs",
            "0,0,0;1,2,1",
        ])
        .unwrap();
        assert!(pred.contains("\"predictions\""), "{pred}");
        let opt = run(&[
            "client", "--addr", &addr, "--op", "optimize", "--app", "pso", "--input", "16,3",
            "--budget", "10",
        ])
        .unwrap();
        assert!(opt.contains("\"kind\":\"optimize\""), "{opt}");
        let metrics = run(&["client", "--addr", &addr, "--op", "metrics"]).unwrap();
        assert!(metrics.contains("serve.requests"), "{metrics}");
        // An unknown app is an error frame and a nonzero client exit.
        assert!(run(&[
            "client", "--addr", &addr, "--op", "optimize", "--app", "nosuch", "--input", "1",
            "--budget", "5",
        ])
        .is_err());
        run(&["client", "--addr", &addr, "--op", "shutdown"]).unwrap();
        let out = server.join().unwrap();
        assert!(out.contains("shutdown complete"), "{out}");
        assert!(out.contains("trace written"), "{out}");
        // The exported server trace is a lintable telemetry artifact.
        let analyzed = run(&["analyze", trace.to_str().unwrap()]).unwrap();
        assert!(
            analyzed.contains("telemetry") || analyzed.contains("0 errors"),
            "{analyzed}"
        );
    }

    #[test]
    fn client_flag_validation_is_local() {
        // Missing required pieces fail before any connection attempt.
        let err = run(&["client", "--op", "optimize", "--addr", "127.0.0.1:1"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("--app"), "{err}");
        let err = run(&[
            "client",
            "--op",
            "predict",
            "--addr",
            "127.0.0.1:1",
            "--app",
            "pso",
            "--input",
            "1,2",
            "--configs",
            "0,x",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("--configs"), "{err}");
    }

    #[test]
    fn help_and_apps_render() {
        let help = run(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
        let apps = run(&["apps"]).unwrap();
        for name in [
            "LULESH",
            "FFmpeg",
            "Bodytrack",
            "PSO",
            "CoMD",
            "PageRank",
            "StreamAgg",
            "Stencil",
        ] {
            assert!(apps.contains(name), "missing {name}");
        }
        for technique in ["precision scaling", "task skipping"] {
            assert!(apps.contains(technique), "missing technique {technique}");
        }
    }

    #[test]
    fn new_ports_resolve_and_run_through_the_cli() {
        // `phases` is the cheapest engine-backed command; running it for a
        // survey port proves the registry-driven lookup covers new apps.
        let out = run(&[
            "phases",
            "--app",
            "streamagg",
            "--input",
            "48,24",
            "--probes",
            "2",
            "--threads",
            "1",
        ])
        .unwrap();
        assert!(out.contains("phase"), "{out}");
    }

    #[test]
    fn unknown_command_and_app_are_reported() {
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["phases", "--app", "nosuch", "--input", "1,2"]).is_err());
    }

    #[test]
    fn oracle_runs_end_to_end_and_reports_metrics() {
        let out = run(&[
            "oracle",
            "--app",
            "pso",
            "--input",
            "16,3",
            "--budget",
            "30",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("oracle"), "{out}");
        assert!(out.contains("evaluation:"), "{out}");
        // The winner re-measure guarantees at least one cache hit.
        assert!(!out.contains(" 0 cache hits"), "{out}");
        assert!(out.contains("stage oracle"), "{out}");
    }

    #[test]
    fn inspect_and_compare_work() {
        let dir = std::env::temp_dir().join("opprox_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso2.json");
        let model_s = model.to_str().unwrap();
        run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        let out = run(&["inspect", "--model", model_s]).unwrap();
        assert!(out.contains("phases: 2"), "{out}");
        assert!(out.contains("golden-iteration estimator"), "{out}");
        let out = run(&[
            "compare", "--app", "pso", "--input", "16,3", "--budget", "20", "--phases", "2",
            "--sparse", "6",
        ])
        .unwrap();
        assert!(
            out.contains("OPPROX :") && out.contains("oracle :"),
            "{out}"
        );
        assert!(out.contains("evaluation:"), "{out}");
        std::fs::remove_file(model).ok();
    }

    #[test]
    fn train_optimize_run_round_trip() {
        let dir = std::env::temp_dir().join("opprox_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso.json");
        let model_s = model.to_str().unwrap();
        let out = run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "8",
        ])
        .unwrap();
        assert!(out.contains("model saved"), "{out}");
        // The self-check re-requests each golden run: cache hits > 0.
        assert!(out.contains("evaluation:"), "{out}");
        assert!(!out.contains(" 0 cache hits"), "{out}");
        let out = run(&[
            "optimize", "--model", model_s, "--input", "16,3", "--budget", "10",
        ])
        .unwrap();
        assert!(out.contains("plan for PSO"), "{out}");
        let out = run(&[
            "run",
            "--model",
            model_s,
            "--input",
            "16,3",
            "--budget",
            "10",
            "--validations",
            "12",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("measured:"), "{out}");
        assert!(out.contains("evaluation:"), "{out}");
        std::fs::remove_file(model).ok();
    }

    #[test]
    fn analyze_reports_seeded_defects_and_fails() {
        let dir = std::env::temp_dir().join("opprox_cli_analyze");
        std::fs::create_dir_all(&dir).unwrap();
        // A corrupt schedule (level 9 on max-level-5 blocks, zero
        // expected iterations) against the PSO block descriptors.
        let schedule = dir.join("schedule.json");
        std::fs::write(
            &schedule,
            r#"{"configs":[{"levels":[9,0,0]}],"expected_iters":0}"#,
        )
        .unwrap();
        let blocks = dir.join("blocks.json");
        let descriptors = opprox_apps::registry::by_name("pso")
            .unwrap()
            .meta()
            .blocks
            .clone();
        std::fs::write(&blocks, serde_json::to_string(&descriptors).unwrap()).unwrap();
        let schedule_s = schedule.to_str().unwrap();
        let blocks_s = blocks.to_str().unwrap();

        let err = run(&["analyze", schedule_s, blocks_s]).unwrap_err();
        assert!(err.to_string().contains("error"), "{err}");

        // The findings themselves are written before the failure; verify
        // through the dispatch buffer directly.
        let command = Command::parse(
            ["analyze", schedule_s, blocks_s, "--format", "json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let mut buf = Vec::new();
        let result = dispatch(&command, &mut buf);
        let rendered = String::from_utf8(buf).unwrap();
        assert!(result.is_err());
        assert!(rendered.contains("\"code\":\"A001\""), "{rendered}");
        assert!(rendered.contains("\"code\":\"A003\""), "{rendered}");
        assert!(
            rendered.contains("schedule.phase[0].block[AB0]"),
            "{rendered}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_passes_clean_artifacts_and_denies_warnings() {
        let dir = std::env::temp_dir().join("opprox_cli_analyze2");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(&spec, r#"{"error_budget":10.0}"#).unwrap();
        let spec_s = spec.to_str().unwrap();
        let out = run(&["analyze", spec_s]).unwrap();
        assert!(out.contains("0 errors, 0 warnings"), "{out}");

        // An absurd-but-valid schedule is a warning: ok by default,
        // fatal under --deny warnings.
        let schedule = dir.join("schedule.json");
        std::fs::write(
            &schedule,
            r#"{"configs":[{"levels":[0,0,0]}],"expected_iters":2000000000000}"#,
        )
        .unwrap();
        let schedule_s = schedule.to_str().unwrap();
        let out = run(&["analyze", schedule_s]).unwrap();
        assert!(out.contains("warning[A003]"), "{out}");
        let err = run(&["analyze", schedule_s, "--deny", "warnings"]).unwrap_err();
        assert!(err.to_string().contains("deny"), "{err}");

        // Unreadable and unclassifiable inputs fail with the path named.
        let err = run(&["analyze", "/no/such/file.json"]).unwrap_err();
        assert!(err.to_string().contains("/no/such/file.json"), "{err}");
        let junk = dir.join("junk.json");
        std::fs::write(&junk, "17").unwrap();
        let err = run(&["analyze", junk.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("unrecognized artifact"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_over_session_directory_links_artifacts_and_gates_exit() {
        let dir = std::env::temp_dir().join("opprox_cli_audit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.json");
        let trace = dir.join("trace.json");
        run(&[
            "train",
            "--app",
            "pso",
            "--out",
            model.to_str().unwrap(),
            "--phases",
            "2",
            "--sparse",
            "6",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let dir_s = dir.to_str().unwrap();

        // A healthy (model, trace) session: no findings beyond X008
        // coverage notes, which survive --deny warnings.
        let out = run(&["audit", dir_s, "--deny", "warnings"]).unwrap();
        assert!(out.contains("0 errors, 0 warnings"), "{out}");
        assert!(out.contains("info[X008]"), "{out}");

        // SARIF renders from the same findings.
        let sarif = run(&["audit", dir_s, "--format", "sarif"]).unwrap();
        assert!(sarif.contains("sarif-2.1.0.json"), "{sarif}");
        assert!(sarif.contains("\"ruleId\":\"X008\""), "{sarif}");

        // Drop an unexecutable schedule into the session: X006 fires and
        // the exit status gates.
        std::fs::write(
            dir.join("schedule.json"),
            r#"{"configs":[{"levels":[9,0,0]},{"levels":[0,0,0]}],"expected_iters":100}"#,
        )
        .unwrap();
        let command = Command::parse(["audit", dir_s].iter().map(|s| s.to_string())).unwrap();
        let mut buf = Vec::new();
        let result = dispatch(&command, &mut buf);
        let rendered = String::from_utf8(buf).unwrap();
        assert!(result.is_err(), "X006 must gate the exit status");
        assert!(rendered.contains("error[X006]"), "{rendered}");

        // An empty directory is an explicit error, not a silent pass.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&["audit", empty.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("no .json artifacts"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_corrupt_model_file() {
        // `run`/`optimize`/`inspect` load through TrainedOpprox::load,
        // which applies the Error-severity lint subset at the boundary.
        let dir = std::env::temp_dir().join("opprox_cli_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso.json");
        let model_s = model.to_str().unwrap();
        run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        // Corrupt the model set's declared phase count (the adjacent
        // `num_blocks` key pins the match inside `models`, not the
        // top-level copy): a shape mismatch JSON text can carry.
        let text = std::fs::read_to_string(&model).unwrap();
        let corrupt = text.replacen(
            "\"num_phases\":2,\"num_blocks\"",
            "\"num_phases\":9,\"num_blocks\"",
            1,
        );
        assert_ne!(text, corrupt, "the declared dimensions were rewritten");
        std::fs::write(&model, corrupt).unwrap();
        let err = run(&["inspect", "--model", model_s]).unwrap_err();
        assert!(
            err.to_string().contains("invalid trained model set"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_under_fault_injection_prints_the_robustness_ledger() {
        let dir = std::env::temp_dir().join("opprox_cli_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso_faulty.json");
        let model_s = model.to_str().unwrap();
        // Timeout-class injection only: deterministic, no panic unwinding,
        // so the test needs no panic-hook filtering.
        let out = run(&[
            "train",
            "--app",
            "pso",
            "--out",
            model_s,
            "--phases",
            "2",
            "--sparse",
            "6",
            "--threads",
            "2",
            "--fault-plan",
            "seed=7,timeout=0.2",
            "--max-retries",
            "3",
        ])
        .unwrap();
        assert!(out.contains("model saved"), "{out}");
        assert!(out.contains("robustness:"), "{out}");
        assert!(out.contains("faults injected"), "{out}");
        // The saved model must still load cleanly.
        let out = run(&["inspect", "--model", model_s]).unwrap();
        assert!(out.contains("phases: 2"), "{out}");
        // Without a plan the ledger stays silent on a clean run.
        let out = run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        assert!(!out.contains("robustness:"), "{out}");
        std::fs::remove_file(model).ok();
    }

    #[test]
    fn trace_out_round_trips_through_summarize_and_analyze() {
        let dir = std::env::temp_dir().join("opprox_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso.json");
        let trace = dir.join("t.json");
        let (model_s, trace_s) = (model.to_str().unwrap(), trace.to_str().unwrap());
        let out = run(&[
            "train",
            "--app",
            "pso",
            "--out",
            model_s,
            "--phases",
            "2",
            "--sparse",
            "6",
            "--threads",
            "2",
            "--trace-out",
            trace_s,
        ])
        .unwrap();
        assert!(out.contains("trace written to"), "{out}");
        // The human summary names the span and counter sections.
        let out = run(&["trace", "summarize", trace_s]).unwrap();
        assert!(out.contains("telemetry summary"), "{out}");
        assert!(out.contains("stage/"), "{out}");
        assert!(out.contains("eval.exec"), "{out}");
        // A healthy training trace passes the telemetry lints, even with
        // warnings denied (the self-check guarantees cache hits).
        let out = run(&["analyze", trace_s, "--deny", "warnings"]).unwrap();
        assert!(out.contains("0 errors, 0 warnings"), "{out}");
        // The chrome export is a JSON array (schema-tested elsewhere).
        let chrome = dir.join("t.chrome.json");
        let chrome_s = chrome.to_str().unwrap();
        run(&[
            "optimize",
            "--model",
            model_s,
            "--input",
            "16,3",
            "--budget",
            "10",
            "--trace-out",
            chrome_s,
            "--trace-format",
            "chrome",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&chrome).unwrap();
        assert!(text.starts_with('['), "{text}");
        // summarize rejects a non-report file with the path named.
        let err = run(&["trace", "summarize", chrome_s]).unwrap_err();
        assert!(err.to_string().contains("t.chrome.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_accepts_a_canary_input() {
        let dir = std::env::temp_dir().join("opprox_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("pso3.json");
        let model_s = model.to_str().unwrap();
        run(&[
            "train", "--app", "pso", "--out", model_s, "--phases", "2", "--sparse", "6",
        ])
        .unwrap();
        let out = run(&[
            "run", "--model", model_s, "--input", "24,3", "--budget", "15", "--canary", "12,3",
        ])
        .unwrap();
        assert!(out.contains("validated plan"), "{out}");
        std::fs::remove_file(model).ok();
    }
}
