//! A small, dependency-free argument parser for the `opprox` binary.
//!
//! Grammar: `opprox <command> [--flag value]...`. Flags always take a
//! value; unknown flags are errors so typos fail loudly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand plus its `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Errors from argument parsing and flag extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// A flag was given without a value.
    MissingValue(String),
    /// A required flag was absent.
    MissingFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing command; try `opprox help`"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} is missing"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value}: expected {expected}"),
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument `{arg}` (flags are --name value)")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on an empty command line, a flag without a
    /// value, or a stray positional argument.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut iter = args.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        let mut flags = BTreeMap::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(ParsedArgs { command, flags })
    }

    /// Returns a string flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Returns a required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingFlag`] when absent.
    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::MissingFlag(flag.to_string()))
    }

    /// Returns a required flag parsed as `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent or unparsable.
    pub fn require_f64(&self, flag: &str) -> Result<f64, ArgError> {
        let raw = self.require(flag)?;
        raw.parse().map_err(|_| ArgError::BadValue {
            flag: flag.to_string(),
            value: raw.to_string(),
            expected: "a number",
        })
    }

    /// Returns an optional flag parsed as `usize`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn usize_or(&self, flag: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// Returns an optional flag parsed as `u64`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// Parses a required comma-separated `--input 64,2` flag into values.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent or any element fails to parse.
    pub fn require_input(&self, flag: &str) -> Result<Vec<f64>, ArgError> {
        let raw = self.require(flag)?;
        raw.split(',')
            .map(|part| {
                part.trim().parse().map_err(|_| ArgError::BadValue {
                    flag: flag.to_string(),
                    value: raw.to_string(),
                    expected: "comma-separated numbers, e.g. 64,2",
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["train", "--app", "lulesh", "--phases", "4"]).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("app"), Some("lulesh"));
        assert_eq!(a.usize_or("phases", 1).unwrap(), 4);
        assert_eq!(a.usize_or("sparse", 36).unwrap(), 36);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["train", "--app"]).unwrap_err(),
            ArgError::MissingValue("app".into())
        );
        assert_eq!(
            parse(&["train", "stray"]).unwrap_err(),
            ArgError::UnexpectedPositional("stray".into())
        );
    }

    #[test]
    fn typed_accessors_validate() {
        let a = parse(&["x", "--budget", "ten"]).unwrap();
        assert!(matches!(a.require_f64("budget"), Err(ArgError::BadValue { .. })));
        assert!(matches!(a.require("missing"), Err(ArgError::MissingFlag(_))));
        let a = parse(&["x", "--budget", "12.5"]).unwrap();
        assert_eq!(a.require_f64("budget").unwrap(), 12.5);
    }

    #[test]
    fn input_lists_parse() {
        let a = parse(&["x", "--input", "64, 2"]).unwrap();
        assert_eq!(a.require_input("input").unwrap(), vec![64.0, 2.0]);
        let a = parse(&["x", "--input", "64;2"]).unwrap();
        assert!(a.require_input("input").is_err());
    }
}
