//! Typed argument parsing for the `opprox` binary.
//!
//! Grammar: `opprox <command> [args...] [--flag value]...`. Parsing is
//! two-stage: the raw positionals and `--flag value` pairs are
//! collected, then immediately checked against the selected command's
//! flag set and converted into a typed [`Command`]. Unknown commands and
//! unknown flags fail **at parse time** with a nearest-match suggestion,
//! so nothing stringly-typed survives into dispatch. Only `analyze` and
//! `audit` (their artifact files) and `trace` (its subcommand and trace
//! file) take positional arguments; everywhere else a positional is an
//! error.

use opprox_core::{DriftInjection, FaultPlan, RecoveryPolicy};
use std::collections::BTreeMap;
use std::fmt;

/// A fully parsed, typed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the registered applications.
    Apps,
    /// Algorithm 1: phase-granularity search.
    Phases {
        /// Application name.
        app: String,
        /// Input parameter values.
        input: Vec<f64>,
        /// Probe configurations per phase.
        probes: usize,
        /// RNG seed for the probe configurations.
        seed: u64,
        /// Worker threads for the evaluation engine (`None` = all cores).
        threads: Option<usize>,
        /// Telemetry export (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// Profile an application, fit models, save them to disk.
    Train {
        /// Application name.
        app: String,
        /// Output path for the trained model JSON.
        out: String,
        /// Number of phases.
        phases: usize,
        /// Sparse multi-block samples per (input, phase).
        sparse: usize,
        /// RNG seed for the sampling.
        seed: u64,
        /// Worker threads for the evaluation engine.
        threads: Option<usize>,
        /// Deterministic fault-injection plan (`--fault-plan`).
        fault_plan: Option<FaultPlan>,
        /// Retry and timeout policy (`--max-retries`, `--eval-timeout-ms`).
        recovery: RecoveryPolicy,
        /// Telemetry export (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// Algorithm 2, model-only: no real executions.
    Optimize {
        /// Path to a trained model JSON.
        model: String,
        /// Input parameter values.
        input: Vec<f64>,
        /// QoS-degradation budget.
        budget: f64,
        /// Telemetry export (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// Validated optimization plus real execution.
    Run {
        /// Path to a trained model JSON.
        model: String,
        /// Input parameter values.
        input: Vec<f64>,
        /// QoS-degradation budget.
        budget: f64,
        /// Optional canary input for the validation executions.
        canary: Option<Vec<f64>>,
        /// Cap on validation executions.
        validations: usize,
        /// Worker threads for the evaluation engine.
        threads: Option<usize>,
        /// Deterministic fault-injection plan (`--fault-plan`).
        fault_plan: Option<FaultPlan>,
        /// Retry and timeout policy (`--max-retries`, `--eval-timeout-ms`).
        recovery: RecoveryPolicy,
        /// Run the closed-loop controller instead of the one-shot
        /// validated pipeline (`--adaptive true`).
        adaptive: bool,
        /// Controller drift tolerance override (`--drift-tolerance`).
        drift_tolerance: Option<f64>,
        /// Online BBV re-segmentation toggle (`--resegment false`).
        resegment: bool,
        /// Seeded drift injection for the controller
        /// (`--inject-drift phase=P,factor=F[,block=B]`).
        inject_drift: Option<DriftInjection>,
        /// Telemetry export (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// Phase-agnostic exhaustive baseline.
    Oracle {
        /// Application name.
        app: String,
        /// Input parameter values.
        input: Vec<f64>,
        /// QoS-degradation budget.
        budget: f64,
        /// Worker threads for the evaluation engine.
        threads: Option<usize>,
        /// Telemetry export (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// Summarize a trained model.
    Inspect {
        /// Path to a trained model JSON.
        model: String,
    },
    /// Lint serialized artifacts (schedules, specs, trained model sets).
    Analyze {
        /// Paths to the artifact files, in any order and combination.
        artifacts: Vec<String>,
        /// Report format.
        format: OutputFormat,
        /// Treat warnings as fatal (`--deny warnings`).
        deny_warnings: bool,
    },
    /// Cross-artifact audit of one run's linked artifacts.
    Audit {
        /// Paths to artifact files or directories of them.
        artifacts: Vec<String>,
        /// Report format.
        format: OutputFormat,
        /// Treat warnings as fatal (`--deny warnings`).
        deny_warnings: bool,
        /// X001 drift band widening (`--tolerance T`).
        tolerance: f64,
    },
    /// OPPROX (validated) vs the oracle in one shot.
    Compare {
        /// Application name.
        app: String,
        /// Input parameter values.
        input: Vec<f64>,
        /// QoS-degradation budget.
        budget: f64,
        /// Number of phases for training.
        phases: usize,
        /// Sparse samples per (input, phase) for training.
        sparse: usize,
        /// RNG seed for the sampling.
        seed: u64,
        /// Worker threads for the evaluation engine.
        threads: Option<usize>,
        /// Deterministic fault-injection plan (`--fault-plan`).
        fault_plan: Option<FaultPlan>,
        /// Retry and timeout policy (`--max-retries`, `--eval-timeout-ms`).
        recovery: RecoveryPolicy,
        /// Telemetry export (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// Long-running optimization service speaking the v1 wire protocol
    /// (line-delimited JSON over TCP).
    Serve {
        /// Paths of the trained-model artifacts to load (comma-separated
        /// in `--model`); each is hot-reloaded on file change.
        models: Vec<String>,
        /// Bind address (`host:port`; port 0 picks a free port).
        addr: String,
        /// File the bound address is written to once listening
        /// (`--addr-file`), so scripts can use `--addr 127.0.0.1:0`.
        addr_file: Option<String>,
        /// Worker threads for the request pool (`None` = all cores).
        threads: Option<usize>,
        /// Admission bound of the request queue (`--queue-limit`).
        queue_limit: usize,
        /// Largest request batch handed to the pool (`--batch-max`).
        batch_max: usize,
        /// Artifact mtime poll interval (`--reload-poll-ms`).
        reload_poll_ms: u64,
        /// Telemetry export at shutdown (`--trace-out`, `--trace-format`).
        trace: TraceSpec,
    },
    /// One-shot wire client for smoke queries against a running server.
    Client {
        /// Server address (`host:port`).
        addr: String,
        /// Which request to send.
        op: ClientOp,
        /// Application name (optimize/predict).
        app: Option<String>,
        /// Input parameter values (optimize/predict).
        input: Option<Vec<f64>>,
        /// QoS-degradation budget (optimize).
        budget: Option<f64>,
        /// Phase index (predict).
        phase: u64,
        /// Semicolon-separated level rows, e.g. `0,0,0;1,2,1` (predict).
        configs: Option<String>,
        /// Point-estimate conservatism (`--point true`).
        point: bool,
        /// Empirical validation on the server (`--validate true`).
        validate: bool,
        /// Cap on validation executions (`--validations`).
        validations: Option<u64>,
        /// Per-request retry cap (`--max-retries`).
        max_retries: Option<u64>,
        /// Per-request retry backoff base (`--backoff-ms`).
        backoff_ms: Option<u64>,
        /// Per-request evaluation timeout (`--eval-timeout-ms`).
        eval_timeout_ms: Option<u64>,
        /// Controller drift tolerance override (adaptive,
        /// `--drift-tolerance`).
        drift_tolerance: Option<f64>,
        /// Online BBV re-segmentation toggle (adaptive,
        /// `--resegment false`).
        resegment: bool,
        /// Seeded drift injection (adaptive,
        /// `--inject-drift phase=P,factor=F[,block=B]`).
        inject_drift: Option<DriftInjection>,
    },
    /// Summarize a previously captured telemetry trace
    /// (`opprox trace summarize FILE`).
    Trace {
        /// Path to a JSON telemetry report written by `--trace-out`.
        file: String,
    },
    /// Print the usage summary.
    Help,
}

/// Where and how a command exports its telemetry
/// (`--trace-out FILE [--trace-format json|chrome|text]`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpec {
    /// Output path; `None` disables telemetry export.
    pub out: Option<String>,
    /// Serialization format for the exported trace.
    pub format: TraceFormat,
}

/// Serialization format for `--trace-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// The stable JSON schema consumed by `opprox analyze` and
    /// `opprox trace summarize` (default).
    #[default]
    Json,
    /// Chrome trace-event JSON for `chrome://tracing` / Perfetto.
    Chrome,
    /// The human-readable summary text.
    Text,
}

/// The request kind `opprox client` sends (`--op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOp {
    /// `health` frame: liveness, loaded apps, queue depth.
    Health,
    /// `metrics` frame: the server's telemetry report.
    Metrics,
    /// `optimize` frame.
    Optimize,
    /// `adaptive` frame: a closed-loop controller session.
    Adaptive,
    /// `predict` frame.
    Predict,
    /// `shutdown` frame: clean server stop.
    Shutdown,
}

/// How `opprox analyze` / `opprox audit` render their reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable, compiler-style lines.
    Text,
    /// The stable JSON schema (golden-file tested in `opprox-analyze`).
    Json,
    /// Minimal SARIF 2.1.0 for CI code-scanning upload.
    Sarif,
}

/// `(name, allowed flags)` for every command, used for validation and
/// suggestions.
const COMMANDS: &[(&str, &[&str])] = &[
    ("apps", &[]),
    (
        "phases",
        &[
            "app",
            "input",
            "probes",
            "seed",
            "threads",
            "trace-out",
            "trace-format",
        ],
    ),
    (
        "train",
        &[
            "app",
            "out",
            "phases",
            "sparse",
            "seed",
            "threads",
            "fault-plan",
            "max-retries",
            "eval-timeout-ms",
            "trace-out",
            "trace-format",
        ],
    ),
    (
        "optimize",
        &["model", "input", "budget", "trace-out", "trace-format"],
    ),
    (
        "run",
        &[
            "model",
            "input",
            "budget",
            "canary",
            "validations",
            "threads",
            "fault-plan",
            "max-retries",
            "eval-timeout-ms",
            "adaptive",
            "drift-tolerance",
            "resegment",
            "inject-drift",
            "trace-out",
            "trace-format",
        ],
    ),
    (
        "oracle",
        &[
            "app",
            "input",
            "budget",
            "threads",
            "trace-out",
            "trace-format",
        ],
    ),
    ("inspect", &["model"]),
    ("analyze", &["format", "deny"]),
    ("audit", &["format", "deny", "tolerance"]),
    (
        "compare",
        &[
            "app",
            "input",
            "budget",
            "phases",
            "sparse",
            "seed",
            "threads",
            "fault-plan",
            "max-retries",
            "eval-timeout-ms",
            "trace-out",
            "trace-format",
        ],
    ),
    (
        "serve",
        &[
            "model",
            "addr",
            "addr-file",
            "threads",
            "queue-limit",
            "batch-max",
            "reload-poll-ms",
            "trace-out",
            "trace-format",
        ],
    ),
    (
        "client",
        &[
            "addr",
            "op",
            "app",
            "input",
            "budget",
            "phase",
            "configs",
            "point",
            "validate",
            "validations",
            "max-retries",
            "backoff-ms",
            "eval-timeout-ms",
            "drift-tolerance",
            "resegment",
            "inject-drift",
        ],
    ),
    ("trace", &[]),
    ("help", &[]),
];

/// Default address `opprox serve` binds and `opprox client` dials.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7427";

/// Errors from argument parsing and flag extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not recognized.
    UnknownCommand {
        /// What was typed.
        given: String,
        /// The closest known command, if any is close enough.
        suggestion: Option<String>,
    },
    /// A flag is not accepted by the selected subcommand.
    UnknownFlag {
        /// The subcommand.
        command: String,
        /// The offending flag.
        flag: String,
        /// The closest accepted flag, if any is close enough.
        suggestion: Option<String>,
    },
    /// A flag was given without a value.
    MissingValue(String),
    /// A required flag was absent.
    MissingFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// `--fault-plan` failed to parse.
    BadFaultPlan {
        /// The offending spec.
        value: String,
        /// The fault-plan parser's message.
        message: String,
    },
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// `opprox analyze` or `opprox audit` was invoked with no artifact
    /// files.
    NoArtifacts,
    /// `opprox trace` was invoked with anything other than
    /// `summarize FILE`.
    BadTraceUsage,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing command; try `opprox help`"),
            ArgError::UnknownCommand { given, suggestion } => {
                write!(f, "unknown command `{given}`")?;
                match suggestion {
                    Some(s) => write!(f, "; did you mean `{s}`?"),
                    None => write!(f, "; try `opprox help`"),
                }
            }
            ArgError::UnknownFlag {
                command,
                flag,
                suggestion,
            } => {
                write!(f, "`opprox {command}` does not take --{flag}")?;
                match suggestion {
                    Some(s) => write!(f, "; did you mean --{s}?"),
                    None => write!(f, "; try `opprox help`"),
                }
            }
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} is missing"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value}: expected {expected}"),
            ArgError::BadFaultPlan { value, message } => {
                write!(f, "--fault-plan {value}: {message}")
            }
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument `{arg}` (flags are --name value)")
            }
            ArgError::NoArtifacts => write!(
                f,
                "`opprox analyze`/`opprox audit` need at least one artifact \
                 file or directory; try `opprox analyze model.json schedule.json`"
            ),
            ArgError::BadTraceUsage => write!(
                f,
                "usage: `opprox trace summarize FILE` \
                 (FILE is a JSON trace written by --trace-out)"
            ),
        }
    }
}

impl std::error::Error for ArgError {}

impl Command {
    /// Parses `args` (without the program name) into a typed command.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on an empty command line, an unknown command
    /// or flag (with a nearest-match suggestion), a flag without a
    /// value, a missing or malformed required flag, or a stray
    /// positional argument.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        RawArgs::collect(args)?.into_command()
    }
}

/// The raw `command + positionals + flag map` stage, before typing.
struct RawArgs {
    command: String,
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl RawArgs {
    fn collect<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut iter = args.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value);
            } else {
                positionals.push(arg);
            }
        }
        Ok(RawArgs {
            command,
            positionals,
            flags,
        })
    }

    fn into_command(self) -> Result<Command, ArgError> {
        let Some(&(name, allowed)) = COMMANDS.iter().find(|(n, _)| *n == self.command) else {
            return Err(ArgError::UnknownCommand {
                suggestion: nearest(&self.command, COMMANDS.iter().map(|(n, _)| *n)),
                given: self.command,
            });
        };
        if name != "analyze" && name != "audit" && name != "trace" {
            if let Some(stray) = self.positionals.first() {
                return Err(ArgError::UnexpectedPositional(stray.clone()));
            }
        }
        for flag in self.flags.keys() {
            if !allowed.contains(&flag.as_str()) {
                return Err(ArgError::UnknownFlag {
                    command: name.to_string(),
                    flag: flag.clone(),
                    suggestion: nearest(flag, allowed.iter().copied()),
                });
            }
        }
        Ok(match name {
            "apps" => Command::Apps,
            "phases" => Command::Phases {
                app: self.require("app")?.to_string(),
                input: self.require_input("input")?,
                probes: self.usize_or("probes", 6)?,
                seed: self.u64_or("seed", 0x9A5E)?,
                threads: self.threads()?,
                trace: self.trace_spec()?,
            },
            "train" => Command::Train {
                app: self.require("app")?.to_string(),
                out: self.require("out")?.to_string(),
                phases: self.usize_or("phases", 4)?,
                sparse: self.usize_or("sparse", 36)?,
                seed: self.u64_or("seed", 11)?,
                threads: self.threads()?,
                fault_plan: self.fault_plan()?,
                recovery: self.recovery()?,
                trace: self.trace_spec()?,
            },
            "optimize" => Command::Optimize {
                model: self.require("model")?.to_string(),
                input: self.require_input("input")?,
                budget: self.require_f64("budget")?,
                trace: self.trace_spec()?,
            },
            "run" => Command::Run {
                model: self.require("model")?.to_string(),
                input: self.require_input("input")?,
                budget: self.require_f64("budget")?,
                canary: match self.get("canary") {
                    Some(_) => Some(self.require_input("canary")?),
                    None => None,
                },
                validations: self.usize_or("validations", 32)?,
                threads: self.threads()?,
                fault_plan: self.fault_plan()?,
                recovery: self.recovery()?,
                adaptive: self.bool_or("adaptive", false)?,
                drift_tolerance: self.drift_tolerance()?,
                resegment: self.bool_or("resegment", true)?,
                inject_drift: self.inject_drift()?,
                trace: self.trace_spec()?,
            },
            "oracle" => Command::Oracle {
                app: self.require("app")?.to_string(),
                input: self.require_input("input")?,
                budget: self.require_f64("budget")?,
                threads: self.threads()?,
                trace: self.trace_spec()?,
            },
            "inspect" => Command::Inspect {
                model: self.require("model")?.to_string(),
            },
            "analyze" => {
                if self.positionals.is_empty() {
                    return Err(ArgError::NoArtifacts);
                }
                Command::Analyze {
                    format: self.output_format()?,
                    deny_warnings: self.deny_warnings()?,
                    artifacts: self.positionals,
                }
            }
            "audit" => {
                if self.positionals.is_empty() {
                    return Err(ArgError::NoArtifacts);
                }
                Command::Audit {
                    format: self.output_format()?,
                    deny_warnings: self.deny_warnings()?,
                    tolerance: self.tolerance()?,
                    artifacts: self.positionals,
                }
            }
            "compare" => Command::Compare {
                app: self.require("app")?.to_string(),
                input: self.require_input("input")?,
                budget: self.require_f64("budget")?,
                phases: self.usize_or("phases", 4)?,
                sparse: self.usize_or("sparse", 36)?,
                seed: self.u64_or("seed", 11)?,
                threads: self.threads()?,
                fault_plan: self.fault_plan()?,
                recovery: self.recovery()?,
                trace: self.trace_spec()?,
            },
            "serve" => Command::Serve {
                models: self
                    .require("model")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect(),
                addr: self.get("addr").unwrap_or(DEFAULT_SERVE_ADDR).to_string(),
                addr_file: self.get("addr-file").map(str::to_string),
                threads: self.threads()?,
                queue_limit: self.usize_or("queue-limit", 64)?,
                batch_max: self.usize_or("batch-max", 8)?,
                reload_poll_ms: self.u64_or("reload-poll-ms", 200)?,
                trace: self.trace_spec()?,
            },
            "client" => Command::Client {
                addr: self.get("addr").unwrap_or(DEFAULT_SERVE_ADDR).to_string(),
                op: self.client_op()?,
                app: self.get("app").map(str::to_string),
                input: match self.get("input") {
                    Some(_) => Some(self.require_input("input")?),
                    None => None,
                },
                budget: match self.get("budget") {
                    Some(_) => Some(self.require_f64("budget")?),
                    None => None,
                },
                phase: self.u64_or("phase", 0)?,
                configs: self.get("configs").map(str::to_string),
                point: self.bool_or("point", false)?,
                validate: self.bool_or("validate", false)?,
                validations: self.opt_u64("validations")?,
                max_retries: self.opt_u64("max-retries")?,
                backoff_ms: self.opt_u64("backoff-ms")?,
                eval_timeout_ms: self.opt_u64("eval-timeout-ms")?,
                drift_tolerance: self.drift_tolerance()?,
                resegment: self.bool_or("resegment", true)?,
                inject_drift: self.inject_drift()?,
            },
            "trace" => match self.positionals.as_slice() {
                [verb, file] if verb == "summarize" => Command::Trace { file: file.clone() },
                _ => return Err(ArgError::BadTraceUsage),
            },
            _ => Command::Help,
        })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::MissingFlag(flag.to_string()))
    }

    fn require_f64(&self, flag: &str) -> Result<f64, ArgError> {
        let raw = self.require(flag)?;
        raw.parse().map_err(|_| ArgError::BadValue {
            flag: flag.to_string(),
            value: raw.to_string(),
            expected: "a number",
        })
    }

    fn usize_or(&self, flag: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    fn opt_u64(&self, flag: &str) -> Result<Option<u64>, ArgError> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    fn bool_or(&self, flag: &str, default: bool) -> Result<bool, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(raw) => Err(ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected: "true or false",
            }),
        }
    }

    /// `--op health|metrics|optimize|adaptive|predict|shutdown`
    /// (required).
    fn client_op(&self) -> Result<ClientOp, ArgError> {
        match self.require("op")? {
            "health" => Ok(ClientOp::Health),
            "metrics" => Ok(ClientOp::Metrics),
            "optimize" => Ok(ClientOp::Optimize),
            "adaptive" => Ok(ClientOp::Adaptive),
            "predict" => Ok(ClientOp::Predict),
            "shutdown" => Ok(ClientOp::Shutdown),
            raw => Err(ArgError::BadValue {
                flag: "op".to_string(),
                value: raw.to_string(),
                expected: "health, metrics, optimize, adaptive, predict, or shutdown",
            }),
        }
    }

    /// `--drift-tolerance T` for the adaptive controller (finite,
    /// non-negative; `None` keeps the controller default).
    fn drift_tolerance(&self) -> Result<Option<f64>, ArgError> {
        match self.get("drift-tolerance") {
            None => Ok(None),
            Some(raw) => match raw.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => Ok(Some(t)),
                _ => Err(ArgError::BadValue {
                    flag: "drift-tolerance".to_string(),
                    value: raw.to_string(),
                    expected: "a finite non-negative number",
                }),
            },
        }
    }

    /// `--inject-drift phase=P,factor=F[,block=B]` for seeded-drift
    /// controller sessions.
    fn inject_drift(&self) -> Result<Option<DriftInjection>, ArgError> {
        match self.get("inject-drift") {
            None => Ok(None),
            Some(raw) => DriftInjection::parse(raw)
                .map(Some)
                .map_err(|_| ArgError::BadValue {
                    flag: "inject-drift".to_string(),
                    value: raw.to_string(),
                    expected: "`phase=P,factor=F[,block=B]`",
                }),
        }
    }

    /// `--format text|json|sarif` (default `text`).
    fn output_format(&self) -> Result<OutputFormat, ArgError> {
        match self.get("format") {
            None | Some("text") => Ok(OutputFormat::Text),
            Some("json") => Ok(OutputFormat::Json),
            Some("sarif") => Ok(OutputFormat::Sarif),
            Some(raw) => Err(ArgError::BadValue {
                flag: "format".to_string(),
                value: raw.to_string(),
                expected: "`text`, `json`, or `sarif`",
            }),
        }
    }

    /// `--tolerance T` for the X001 drift band (finite, non-negative;
    /// defaults to [`opprox_analyze::DEFAULT_DRIFT_TOLERANCE`]).
    fn tolerance(&self) -> Result<f64, ArgError> {
        match self.get("tolerance") {
            None => Ok(opprox_analyze::DEFAULT_DRIFT_TOLERANCE),
            Some(raw) => match raw.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => Ok(t),
                _ => Err(ArgError::BadValue {
                    flag: "tolerance".to_string(),
                    value: raw.to_string(),
                    expected: "a finite non-negative number",
                }),
            },
        }
    }

    /// `--deny warnings` (the only deniable class).
    fn deny_warnings(&self) -> Result<bool, ArgError> {
        match self.get("deny") {
            None => Ok(false),
            Some("warnings") => Ok(true),
            Some(raw) => Err(ArgError::BadValue {
                flag: "deny".to_string(),
                value: raw.to_string(),
                expected: "`warnings`",
            }),
        }
    }

    /// `--threads N` (at least 1); `None` means "all cores".
    fn threads(&self) -> Result<Option<usize>, ArgError> {
        match self.get("threads") {
            None => Ok(None),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(ArgError::BadValue {
                    flag: "threads".to_string(),
                    value: raw.to_string(),
                    expected: "a positive integer",
                }),
            },
        }
    }

    /// `--trace-out FILE [--trace-format json|chrome|text]`; the format
    /// defaults to `json` and is rejected without `--trace-out`.
    fn trace_spec(&self) -> Result<TraceSpec, ArgError> {
        let format = match self.get("trace-format") {
            None | Some("json") => TraceFormat::Json,
            Some("chrome") => TraceFormat::Chrome,
            Some("text") => TraceFormat::Text,
            Some(raw) => {
                return Err(ArgError::BadValue {
                    flag: "trace-format".to_string(),
                    value: raw.to_string(),
                    expected: "`json`, `chrome`, or `text`",
                })
            }
        };
        let out = self.get("trace-out").map(str::to_string);
        if out.is_none() && self.get("trace-format").is_some() {
            return Err(ArgError::MissingFlag("trace-out".to_string()));
        }
        Ok(TraceSpec { out, format })
    }

    /// `--fault-plan seed=42,panic=0.1,...`, typed through
    /// [`FaultPlan::parse`].
    fn fault_plan(&self) -> Result<Option<FaultPlan>, ArgError> {
        match self.get("fault-plan") {
            None => Ok(None),
            Some(raw) => {
                FaultPlan::parse(raw)
                    .map(Some)
                    .map_err(|message| ArgError::BadFaultPlan {
                        value: raw.to_string(),
                        message,
                    })
            }
        }
    }

    /// `--max-retries N` and `--eval-timeout-ms MS` over the default
    /// [`RecoveryPolicy`].
    fn recovery(&self) -> Result<RecoveryPolicy, ArgError> {
        let mut policy = RecoveryPolicy::default();
        if let Some(raw) = self.get("max-retries") {
            policy.max_retries = raw.parse().map_err(|_| ArgError::BadValue {
                flag: "max-retries".to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            })?;
        }
        if let Some(raw) = self.get("eval-timeout-ms") {
            let ms: u64 = raw.parse().map_err(|_| ArgError::BadValue {
                flag: "eval-timeout-ms".to_string(),
                value: raw.to_string(),
                expected: "a positive integer of milliseconds",
            })?;
            if ms == 0 {
                return Err(ArgError::BadValue {
                    flag: "eval-timeout-ms".to_string(),
                    value: raw.to_string(),
                    expected: "a positive integer of milliseconds",
                });
            }
            policy.eval_timeout_ms = Some(ms);
        }
        Ok(policy)
    }

    /// Parses a required comma-separated flag (e.g. `--input 64,2`).
    fn require_input(&self, flag: &str) -> Result<Vec<f64>, ArgError> {
        let raw = self.require(flag)?;
        raw.split(',')
            .map(|part| {
                part.trim().parse().map_err(|_| ArgError::BadValue {
                    flag: flag.to_string(),
                    value: raw.to_string(),
                    expected: "comma-separated numbers, e.g. 64,2",
                })
            })
            .collect()
    }
}

/// The closest candidate by edit distance, if within a tolerance that
/// scales with the word length (1 edit for short names, 2 for longer).
fn nearest<'a>(given: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let tolerance = if given.len() <= 4 { 1 } else { 2 };
    candidates
        .map(|c| (edit_distance(given, c), c))
        .filter(|&(d, _)| d <= tolerance)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c.to_string())
}

/// Levenshtein distance between two short ASCII-ish strings.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row.push(subst.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Command, ArgError> {
        Command::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_typed_commands() {
        let c = parse(&[
            "train", "--app", "lulesh", "--out", "m.json", "--phases", "4",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Train {
                app: "lulesh".into(),
                out: "m.json".into(),
                phases: 4,
                sparse: 36,
                seed: 11,
                threads: None,
                fault_plan: None,
                recovery: RecoveryPolicy::default(),
                trace: TraceSpec::default(),
            }
        );
        let c = parse(&[
            "oracle", "--app", "pso", "--input", "16,3", "--budget", "20",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Oracle {
                app: "pso".into(),
                input: vec![16.0, 3.0],
                budget: 20.0,
                threads: None,
                trace: TraceSpec::default(),
            }
        );
        assert_eq!(parse(&["apps"]).unwrap(), Command::Apps);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["train", "--app"]).unwrap_err(),
            ArgError::MissingValue("app".into())
        );
        assert_eq!(
            parse(&["train", "stray"]).unwrap_err(),
            ArgError::UnexpectedPositional("stray".into())
        );
        assert!(matches!(
            parse(&["train", "--app", "pso"]).unwrap_err(),
            ArgError::MissingFlag(f) if f == "out"
        ));
    }

    #[test]
    fn unknown_command_suggests_nearest() {
        let err = parse(&["trian"]).unwrap_err();
        assert_eq!(
            err,
            ArgError::UnknownCommand {
                given: "trian".into(),
                suggestion: Some("train".into()),
            }
        );
        assert!(err.to_string().contains("did you mean `train`?"));
        // Nothing close: no suggestion.
        assert!(matches!(
            parse(&["frobnicate"]).unwrap_err(),
            ArgError::UnknownCommand {
                suggestion: None,
                ..
            }
        ));
    }

    #[test]
    fn unknown_flag_fails_at_parse_time_with_suggestion() {
        let err = parse(&["train", "--app", "pso", "--out", "m", "--sprase", "9"]).unwrap_err();
        assert_eq!(
            err,
            ArgError::UnknownFlag {
                command: "train".into(),
                flag: "sprase".into(),
                suggestion: Some("sparse".into()),
            }
        );
        assert!(err.to_string().contains("did you mean --sparse?"));
        // `optimize` takes no --threads; the error names the command.
        assert!(matches!(
            parse(&["optimize", "--model", "m", "--input", "1", "--budget", "5", "--threads", "2"])
                .unwrap_err(),
            ArgError::UnknownFlag { command, .. } if command == "optimize"
        ));
    }

    #[test]
    fn typed_values_validate() {
        assert!(matches!(
            parse(&["oracle", "--app", "p", "--input", "1,2", "--budget", "ten"]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            parse(&["oracle", "--app", "p", "--input", "1;2", "--budget", "5"]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            parse(&[
                "oracle",
                "--app",
                "p",
                "--input",
                "1,2",
                "--budget",
                "5",
                "--threads",
                "0"
            ])
            .unwrap_err(),
            ArgError::BadValue { .. }
        ));
        let c = parse(&[
            "run",
            "--model",
            "m",
            "--input",
            "64, 2",
            "--budget",
            "12.5",
            "--canary",
            "8,2",
            "--validations",
            "9",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Run {
                model: "m".into(),
                input: vec![64.0, 2.0],
                budget: 12.5,
                canary: Some(vec![8.0, 2.0]),
                validations: 9,
                threads: Some(3),
                fault_plan: None,
                recovery: RecoveryPolicy::default(),
                adaptive: false,
                drift_tolerance: None,
                resegment: true,
                inject_drift: None,
                trace: TraceSpec::default(),
            }
        );
    }

    #[test]
    fn adaptive_run_flags_parse() {
        let c = parse(&[
            "run",
            "--model",
            "m",
            "--input",
            "16,3",
            "--budget",
            "10",
            "--adaptive",
            "true",
            "--drift-tolerance",
            "0.4",
            "--resegment",
            "false",
            "--inject-drift",
            "phase=0,factor=6.0,block=1",
        ])
        .unwrap();
        let Command::Run {
            adaptive,
            drift_tolerance,
            resegment,
            inject_drift,
            ..
        } = c
        else {
            panic!("expected a run command: {c:?}");
        };
        assert!(adaptive);
        assert_eq!(drift_tolerance, Some(0.4));
        assert!(!resegment);
        assert_eq!(
            inject_drift,
            Some(DriftInjection {
                phase: 0,
                factor: 6.0,
                block: Some(1),
            })
        );
        // A malformed drift spec is a parse error naming the flag.
        assert!(matches!(
            parse(&[
                "run",
                "--model",
                "m",
                "--input",
                "16,3",
                "--budget",
                "10",
                "--inject-drift",
                "factor=6.0",
            ])
            .unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "inject-drift"
        ));
        assert!(matches!(
            parse(&[
                "run",
                "--model",
                "m",
                "--input",
                "16,3",
                "--budget",
                "10",
                "--drift-tolerance",
                "-1",
            ])
            .unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "drift-tolerance"
        ));
    }

    #[test]
    fn trace_flags_parse_into_a_spec() {
        let c = parse(&[
            "optimize",
            "--model",
            "m",
            "--input",
            "1,2",
            "--budget",
            "5",
            "--trace-out",
            "t.json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Optimize {
                model: "m".into(),
                input: vec![1.0, 2.0],
                budget: 5.0,
                trace: TraceSpec {
                    out: Some("t.json".into()),
                    format: TraceFormat::Json,
                },
            }
        );
        let c = parse(&[
            "train",
            "--app",
            "pso",
            "--out",
            "m.json",
            "--trace-out",
            "t.trace",
            "--trace-format",
            "chrome",
        ])
        .unwrap();
        let Command::Train { trace, .. } = c else {
            panic!("expected a train command: {c:?}");
        };
        assert_eq!(trace.out.as_deref(), Some("t.trace"));
        assert_eq!(trace.format, TraceFormat::Chrome);
        // An unknown format is a parse error.
        assert!(matches!(
            parse(&[
                "train", "--app", "p", "--out", "m", "--trace-out", "t", "--trace-format", "xml",
            ])
            .unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "trace-format"
        ));
        // --trace-format without --trace-out is rejected.
        assert_eq!(
            parse(&[
                "train",
                "--app",
                "p",
                "--out",
                "m",
                "--trace-format",
                "text"
            ])
            .unwrap_err(),
            ArgError::MissingFlag("trace-out".into())
        );
        // `inspect` and `analyze` take no trace flags.
        assert!(matches!(
            parse(&["inspect", "--model", "m", "--trace-out", "t"]).unwrap_err(),
            ArgError::UnknownFlag { command, .. } if command == "inspect"
        ));
    }

    #[test]
    fn trace_summarize_takes_a_single_file() {
        assert_eq!(
            parse(&["trace", "summarize", "t.json"]).unwrap(),
            Command::Trace {
                file: "t.json".into()
            }
        );
        assert_eq!(parse(&["trace"]).unwrap_err(), ArgError::BadTraceUsage);
        assert_eq!(
            parse(&["trace", "summarize"]).unwrap_err(),
            ArgError::BadTraceUsage
        );
        assert_eq!(
            parse(&["trace", "explain", "t.json"]).unwrap_err(),
            ArgError::BadTraceUsage
        );
        assert_eq!(
            parse(&["trace", "summarize", "a.json", "b.json"]).unwrap_err(),
            ArgError::BadTraceUsage
        );
    }

    #[test]
    fn analyze_takes_positionals_other_commands_do_not() {
        let c = parse(&["analyze", "m.json", "s.json"]).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                artifacts: vec!["m.json".into(), "s.json".into()],
                format: OutputFormat::Text,
                deny_warnings: false,
            }
        );
        let c = parse(&[
            "analyze", "m.json", "--format", "json", "--deny", "warnings",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                artifacts: vec!["m.json".into()],
                format: OutputFormat::Json,
                deny_warnings: true,
            }
        );
        assert_eq!(parse(&["analyze"]).unwrap_err(), ArgError::NoArtifacts);
        assert!(matches!(
            parse(&["analyze", "m.json", "--format", "xml"]).unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "format"
        ));
        assert!(matches!(
            parse(&["analyze", "m.json", "--deny", "errors"]).unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "deny"
        ));
        // Positional rejection for every other command is unchanged.
        assert_eq!(
            parse(&["inspect", "m.json"]).unwrap_err(),
            ArgError::UnexpectedPositional("m.json".into())
        );
    }

    #[test]
    fn audit_parses_artifacts_formats_and_tolerance() {
        let c = parse(&["audit", "session/"]).unwrap();
        assert_eq!(
            c,
            Command::Audit {
                artifacts: vec!["session/".into()],
                format: OutputFormat::Text,
                deny_warnings: false,
                tolerance: opprox_analyze::DEFAULT_DRIFT_TOLERANCE,
            }
        );
        let c = parse(&[
            "audit",
            "m.json",
            "t.json",
            "--format",
            "sarif",
            "--deny",
            "warnings",
            "--tolerance",
            "0.5",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Audit {
                artifacts: vec!["m.json".into(), "t.json".into()],
                format: OutputFormat::Sarif,
                deny_warnings: true,
                tolerance: 0.5,
            }
        );
        assert_eq!(parse(&["audit"]).unwrap_err(), ArgError::NoArtifacts);
        assert!(matches!(
            parse(&["audit", "m.json", "--tolerance", "-1"]).unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "tolerance"
        ));
        assert!(matches!(
            parse(&["audit", "m.json", "--tolerance", "NaN"]).unwrap_err(),
            ArgError::BadValue { flag, .. } if flag == "tolerance"
        ));
        // `analyze` does not take --tolerance; the suggestion machinery
        // still points somewhere sensible.
        assert!(matches!(
            parse(&["analyze", "m.json", "--tolerance", "0.5"]).unwrap_err(),
            ArgError::UnknownFlag { command, .. } if command == "analyze"
        ));
        // SARIF is shared with analyze.
        assert!(matches!(
            parse(&["analyze", "m.json", "--format", "sarif"]).unwrap(),
            Command::Analyze {
                format: OutputFormat::Sarif,
                ..
            }
        ));
    }

    #[test]
    fn fault_flags_parse_into_typed_plan_and_policy() {
        let c = parse(&[
            "train",
            "--app",
            "pso",
            "--out",
            "m.json",
            "--fault-plan",
            "seed=42,panic=0.1,timeout=0.05",
            "--max-retries",
            "5",
            "--eval-timeout-ms",
            "250",
        ])
        .unwrap();
        let Command::Train {
            fault_plan: Some(plan),
            recovery,
            ..
        } = c
        else {
            panic!("expected a train command with a fault plan: {c:?}");
        };
        assert_eq!(plan.seed(), 42);
        assert!(plan.is_active());
        assert_eq!(recovery.max_retries, 5);
        assert_eq!(recovery.eval_timeout_ms, Some(250));

        // Without the flags: no plan, default policy.
        let c = parse(&["run", "--model", "m", "--input", "1,2", "--budget", "5"]).unwrap();
        let Command::Run {
            fault_plan,
            recovery,
            ..
        } = c
        else {
            panic!("expected a run command");
        };
        assert_eq!(fault_plan, None);
        assert_eq!(recovery, RecoveryPolicy::default());
    }

    #[test]
    fn fault_flags_reject_malformed_values() {
        let err = parse(&[
            "train",
            "--app",
            "p",
            "--out",
            "m",
            "--fault-plan",
            "panic=lots",
        ])
        .unwrap_err();
        assert!(
            matches!(&err, ArgError::BadFaultPlan { value, .. } if value == "panic=lots"),
            "{err}"
        );
        assert!(err.to_string().contains("non-numeric"), "{err}");
        assert!(matches!(
            parse(&[
                "run",
                "--model",
                "m",
                "--input",
                "1",
                "--budget",
                "5",
                "--max-retries",
                "-1",
            ])
            .unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            parse(&[
                "run",
                "--model",
                "m",
                "--input",
                "1",
                "--budget",
                "5",
                "--eval-timeout-ms",
                "0",
            ])
            .unwrap_err(),
            ArgError::BadValue { .. }
        ));
        // `optimize` is model-only: no engine, no fault flags.
        assert!(matches!(
            parse(&[
                "optimize", "--model", "m", "--input", "1", "--budget", "5", "--fault-plan",
                "seed=1",
            ])
            .unwrap_err(),
            ArgError::UnknownFlag { command, .. } if command == "optimize"
        ));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("train", "train"), 0);
        assert_eq!(edit_distance("trian", "train"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
