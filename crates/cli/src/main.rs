//! `opprox` — command-line front end for the OPPROX reproduction.
//!
//! Mirrors the paper's deployment workflow (Sec. 4.2): models are trained
//! offline and stored on disk; at job-submission time the runtime loads
//! them, solves for the best phase-specific approximation settings under
//! the submitted error budget, and reports the schedule the job should
//! run with.
//!
//! Run `opprox help` for usage.

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::Command::parse(argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout();
    match commands::dispatch(&command, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
