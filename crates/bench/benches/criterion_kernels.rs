//! Criterion micro-benchmarks of the core kernels: the ML substrate
//! (polynomial regression, MIC, decision tree) and one simulation step of
//! each benchmark application. These complement the figure/table benches
//! by tracking the cost of OPPROX's own machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use opprox_approx_rt::{InputParams, PhaseSchedule};
use opprox_ml::dtree::{DecisionTree, TreeParams};
use opprox_ml::mic::mic;
use opprox_ml::polyreg::PolynomialRegression;

fn regression_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, (i % 3) as f64])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|r| 1.0 + r[0] * 0.5 + r[1] * r[2] + r[0] * r[0] * 0.1)
        .collect();
    (xs, ys)
}

fn bench_ml(c: &mut Criterion) {
    let (xs, ys) = regression_data(200);
    c.bench_function("polyreg_fit_degree3_200x3", |b| {
        b.iter(|| PolynomialRegression::fit(&xs, &ys, 3).unwrap())
    });
    let model = PolynomialRegression::fit(&xs, &ys, 3).unwrap();
    c.bench_function("polyreg_predict_one", |b| {
        b.iter(|| model.predict_one(&[3.0, 2.0, 1.0]).unwrap())
    });

    let a: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let bvals: Vec<f64> = a.iter().map(|x| (x * 0.1).sin()).collect();
    c.bench_function("mic_256_points", |b| b.iter(|| mic(&a, &bvals).unwrap()));

    let labels: Vec<usize> = (0..200).map(|i| usize::from(i % 17 > 8)).collect();
    c.bench_function("dtree_fit_200x3", |b| {
        b.iter_batched(
            || (xs.clone(), labels.clone()),
            |(x, y)| DecisionTree::fit(&x, &y, TreeParams::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden_runs");
    group.sample_size(10);
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("LULESH", vec![48.0, 2.0]),
        ("CoMD", vec![3.0, 1.2, 60.0]),
        ("FFmpeg", vec![12.0, 3.0, 600.0, 0.0]),
        ("Bodytrack", vec![3.0, 120.0, 12.0]),
        ("PSO", vec![16.0, 3.0]),
    ];
    for (name, params) in cases {
        let app = opprox_apps::registry::by_name(name).unwrap();
        let input = InputParams::new(params);
        let schedule = PhaseSchedule::accurate(app.meta().num_blocks());
        group.bench_function(name, |b| b.iter(|| app.run(&input, &schedule).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_ml, bench_apps);
criterion_main!(benches);
