//! Figure 2: LULESH speedup and error grow with the approximation level
//! of each block.
//!
//! For every approximable block, sweep its levels 1..=max with all other
//! blocks accurate (whole-run application) and report the measured
//! speedup and QoS degradation.

use opprox_approx_rt::config::local_sweep;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use opprox_apps::Lulesh;
use opprox_bench::TextTable;

fn main() {
    let app = Lulesh::new();
    let input = InputParams::new(vec![64.0, 2.0]);
    let golden = app.golden(&input).expect("golden run");
    println!("Figure 2 — LULESH per-block approximation-level sweep");
    println!(
        "(input: mesh_length=64, num_regions=2; accurate run: {} iterations, {} work units)\n",
        golden.outer_iters, golden.work
    );

    let blocks = &app.meta().blocks;
    let mut table = TextTable::new(vec![
        "block".into(),
        "technique".into(),
        "level".into(),
        "speedup".into(),
        "qos_degradation_%".into(),
    ]);
    for (b, desc) in blocks.iter().enumerate() {
        for config in local_sweep(blocks, b) {
            let result = app
                .run(&input, &PhaseSchedule::constant(config.clone()))
                .expect("approximate run");
            table.add_row(vec![
                desc.name.clone(),
                desc.technique.to_string(),
                config.level(b).to_string(),
                format!("{:.3}", golden.speedup_over(&result)),
                format!("{:.2}", app.qos_degradation(&golden, &result)),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper): both speedup and QoS degradation increase\n\
         with the level for most blocks; some aggressive settings slow the\n\
         application down instead because the outer loop lengthens."
    );
}
