//! Figures 9 and 10: phase-specific QoS degradation (Fig. 9) and speedup
//! (Fig. 10) for CoMD, PSO, Bodytrack, and FFmpeg.
//!
//! Four equal phases per application; every probe configuration is
//! applied to one phase at a time and finally to the whole run ("All").
//! For FFmpeg the QoS column is reported as PSNR (higher is better),
//! matching the paper's Fig. 9d.

use opprox_approx_rt::qos::degradation_to_psnr;
use opprox_approx_rt::InputParams;
use opprox_bench::runner::{default_probes, phase_probe_series, summarize};
use opprox_bench::TextTable;

fn main() {
    println!("Figures 9 & 10 — phase-specific QoS degradation and speedup\n");

    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("CoMD", vec![3.0, 1.2, 150.0]),
        ("PSO", vec![20.0, 4.0]),
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("FFmpeg", vec![16.0, 5.0, 600.0, 0.0]),
    ];

    for (name, params) in cases {
        let app = opprox_apps::registry::by_name(name).expect("registered app");
        let input = InputParams::new(params);
        let probes = default_probes(app.as_ref(), 8, 0xF09);
        let points = phase_probe_series(app.as_ref(), &input, 4, &probes).expect("probe series");
        let is_video = name == "FFmpeg";

        let qos_header = if is_video {
            "PSNR dB (higher=better)".to_string()
        } else {
            "mean qos % (lower=better)".to_string()
        };
        let mut table = TextTable::new(vec![
            "column".into(),
            qos_header,
            "max qos %".into(),
            "mean speedup".into(),
        ]);
        for col in [Some(0), Some(1), Some(2), Some(3), None] {
            let s = summarize(&points, col);
            let qos_cell = if is_video {
                format!("{:.2}", degradation_to_psnr(s.mean_qos))
            } else {
                format!("{:.2}", s.mean_qos)
            };
            table.add_row(vec![
                match col {
                    Some(i) => format!("phase-{}", i + 1),
                    None => "All".into(),
                },
                qos_cell,
                format!("{:.2}", s.max_qos),
                format!("{:.3}", s.mean_speedup),
            ]);
        }
        println!("--- {name} ---");
        println!("{}", table.render());
    }

    println!(
        "Expected shape (paper Figs. 9/10): QoS degradation is largest when\n\
         approximating phase 1 and nearly vanishes in phase 4 (for FFmpeg,\n\
         PSNR rises with the phase); speedup stays roughly phase-flat for\n\
         CoMD, Bodytrack and FFmpeg, and drops towards late phases for PSO."
    );
}
