//! Serving-layer benchmark: per-request latency (p50/p99) and aggregate
//! throughput of `opprox serve` over real TCP connections, across worker
//! thread counts, under heterogeneous traffic — every client interleaves
//! requests for two applications with different block counts and input
//! arities (PSO and StreamAgg), so the store lookup and per-app plan
//! caches are exercised the way a multi-tenant deployment would.
//! Committed baselines live in `BENCH_serve.json` at the workspace root.

use opprox_bench::TextTable;
use opprox_core::api::{ApiRequest, OptimizeParams, PredictParams};
use opprox_core::pipeline::TrainedOpprox;
use opprox_core::pipeline::{Opprox, TrainingOptions};
use opprox_core::sampling::SamplingPlan;
use opprox_core::serve::{ServeOptions, ServeState, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 100;
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn fast_options() -> TrainingOptions {
    TrainingOptions {
        num_phases: Some(2),
        sampling: SamplingPlan {
            num_phases: 2,
            sparse_samples: 8,
            whole_run_samples: 0,
            seed: 5,
        },
        ..TrainingOptions::default()
    }
}

fn train_pso() -> TrainedOpprox {
    Opprox::train(&opprox_apps::Pso::new(), &fast_options()).expect("train PSO")
}

fn train_streamagg() -> TrainedOpprox {
    Opprox::train(&opprox_apps::StreamAgg::new(), &fast_options()).expect("train StreamAgg")
}

/// The request mix one client sends: mostly predict frames over a small
/// rotating input set, with an optimize frame every eighth request (the
/// repeats exercise the plan cache exactly as a production client would).
/// Every fourth request targets StreamAgg instead of PSO, so each
/// connection hops between model-store entries.
fn request_wire(i: usize) -> String {
    if i % 4 == 2 {
        let input = vec![64.0 + 32.0 * ((i / 4) % 2) as f64, 40.0];
        return if i % 8 == 6 {
            ApiRequest::Optimize(OptimizeParams::new("streamagg", input, 10.0)).to_wire()
        } else {
            ApiRequest::Predict(PredictParams {
                app: "streamagg".to_string(),
                input,
                phase: (i % 2) as u64,
                configs: vec![vec![0, 0, 0], vec![2, 1, 3]],
            })
            .to_wire()
        };
    }
    let input = vec![16.0 + (i % 4) as f64, 3.0];
    if i % 8 == 7 {
        ApiRequest::Optimize(OptimizeParams::new("pso", input, 10.0)).to_wire()
    } else {
        ApiRequest::Predict(PredictParams {
            app: "pso".to_string(),
            input,
            phase: (i % 2) as u64,
            configs: vec![vec![0, 0, 0], vec![1, 2, 1], vec![3, 3, 3]],
        })
        .to_wire()
    }
}

/// Sends the whole request schedule over one connection, returning one
/// latency sample per request.
fn run_client(addr: &str) -> Vec<Duration> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
    let mut reply = String::new();
    for i in 0..REQUESTS_PER_CLIENT {
        let mut frame = request_wire(i);
        frame.push('\n');
        let start = Instant::now();
        writer.write_all(frame.as_bytes()).expect("send");
        writer.flush().expect("flush");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        assert!(reply.contains("\"status\":\"ok\""), "error frame: {reply}");
        latencies.push(start.elapsed());
    }
    latencies
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    println!(
        "serve latency/throughput — {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, \
         mixed PSO + StreamAgg traffic\n"
    );
    let trained = train_pso();
    let trained_agg = train_streamagg();

    let mut table = TextTable::new(vec![
        "threads".into(),
        "p50 (us)".into(),
        "p99 (us)".into(),
        "throughput (req/s)".into(),
    ]);

    for threads in THREAD_COUNTS {
        let state = Arc::new(ServeState::new(ServeOptions {
            threads,
            ..ServeOptions::default()
        }));
        state.install(trained.clone(), None);
        state.install(trained_agg.clone(), None);
        let server = Server::start(Arc::clone(&state)).expect("start server");
        let addr = server.addr().to_string();

        // Warm-up: populate the plan cache and fault in every code path.
        run_client(&addr);

        let wall = Instant::now();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || run_client(&addr))
            })
            .collect();
        let mut latencies: Vec<Duration> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect();
        let elapsed = wall.elapsed();
        latencies.sort_unstable();

        let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
        table.add_row(vec![
            threads.to_string(),
            format!("{:.1}", quantile(&latencies, 0.50).as_secs_f64() * 1e6),
            format!("{:.1}", quantile(&latencies, 0.99).as_secs_f64() * 1e6),
            format!("{:.0}", total / elapsed.as_secs_f64()),
        ]);
        drop(server);
    }

    println!("{}", table.render());
}
