//! Criterion benchmarks of the optimize hot path: end-to-end Algorithm 2
//! solves over the reference PSO workload (4 phases, 216-configuration
//! per-phase space) in both conservatism modes, a budget sweep, and the
//! batched prediction pass the per-phase search is built on. Committed
//! baselines live in `BENCH_optimize.json` at the workspace root.
//!
//! With `BENCH_SMOKE=1` the binary skips criterion entirely and runs the
//! pruning smoke check instead: the pruned search must not expand more
//! nodes than the exhaustive enumeration would evaluate on the reference
//! workload (CI leg `bench-smoke`).

use criterion::{criterion_group, Criterion};
use opprox_approx_rt::config::enumerate_configs;
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig};
use opprox_apps::Pso;
use opprox_core::modeling::{AppModels, ModelingOptions};
use opprox_core::optimizer::{optimize_traced, optimize_with, Conservatism};
use opprox_core::sampling::{collect_training_data, SamplingPlan};
use opprox_core::telemetry::Telemetry;
use opprox_core::AccuracySpec;

const NUM_PHASES: usize = 4;

/// The reference PSO workload: same training setup as `bench_modeling`,
/// so the two benchmark families share one model shape.
fn reference() -> (Pso, AppModels, u64) {
    let app = Pso::new();
    let inputs = vec![
        InputParams::new(vec![16.0, 3.0]),
        InputParams::new(vec![24.0, 4.0]),
    ];
    let plan = SamplingPlan {
        num_phases: NUM_PHASES,
        sparse_samples: 24,
        whole_run_samples: 0,
        seed: 7,
    };
    let data = collect_training_data(&app, &inputs, &plan).expect("training data");
    let iters = data.goldens[0].outer_iters;
    let models = AppModels::fit(&data, NUM_PHASES, &ModelingOptions::default()).expect("fit");
    (app, models, iters)
}

fn bench_optimize(c: &mut Criterion) {
    let (app, models, iters) = reference();
    let blocks = &app.meta().blocks;
    let input = InputParams::new(vec![16.0, 3.0]);
    let mut group = c.benchmark_group("optimize");
    group.sample_size(30);
    group.bench_function("e2e_band", |b| {
        b.iter(|| {
            optimize_with(
                &models,
                blocks,
                &input,
                &AccuracySpec::new(10.0),
                iters,
                Conservatism::Band,
            )
            .unwrap()
        })
    });
    group.bench_function("e2e_point", |b| {
        b.iter(|| {
            optimize_with(
                &models,
                blocks,
                &input,
                &AccuracySpec::new(10.0),
                iters,
                Conservatism::Point,
            )
            .unwrap()
        })
    });
    group.bench_function("budget_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for budget in [2.0, 5.0, 10.0, 20.0, 40.0] {
                let plan = optimize_with(
                    &models,
                    blocks,
                    &input,
                    &AccuracySpec::new(budget),
                    iters,
                    Conservatism::Band,
                )
                .unwrap();
                acc += plan.predicted_speedup;
            }
            acc
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (app, models, _) = reference();
    let input = InputParams::new(vec![16.0, 3.0]);
    let configs: Vec<LevelConfig> = enumerate_configs(&app.meta().blocks)
        .filter(|c| !c.is_accurate())
        .collect();
    let mut group = c.benchmark_group("optimize_predict");
    group.sample_size(40);
    // The per-phase search's model pass: point + conservative predictions
    // over the full non-accurate space. Pins the struct-of-arrays batched
    // expansion throughput.
    group.bench_function("phase_space_pass", |b| {
        b.iter(|| {
            let points = models.predict_point_batch(&input, 0, &configs).unwrap();
            let cons = models.predict_batch(&input, 0, &configs).unwrap();
            points
                .iter()
                .zip(&cons)
                .map(|(p, c)| p.speedup + c.qos)
                .sum::<f64>()
        })
    });
    group.finish();
}

/// The `bench-smoke` CI gate: on the reference workload the pruned search
/// must do no more per-phase work than exhaustive enumeration — i.e. the
/// bound-pruned search never *expands* more nodes than the exhaustive
/// count of non-accurate configurations, and its pruning ledger balances
/// (`visited == expanded + pruned`, the invariant analyze rule A019
/// lints in traces).
fn pruning_smoke() {
    let (app, models, iters) = reference();
    let blocks = &app.meta().blocks;
    let input = InputParams::new(vec![16.0, 3.0]);
    let exhaustive_count = enumerate_configs(blocks)
        .filter(|c| !c.is_accurate())
        .count() as f64;
    let mut checked = 0usize;
    for budget in [2.0, 10.0, 40.0] {
        let t = Telemetry::new();
        optimize_traced(
            &models,
            blocks,
            &input,
            &AccuracySpec::new(budget),
            iters,
            Conservatism::Band,
            Some(&t),
        )
        .expect("optimize");
        let report = t.report();
        for event in report.events_named("optimize.phase") {
            let space = event.field("space").expect("space field");
            let visited = event.field("visited").expect("visited field");
            let expanded = event.field("expanded").expect("expanded field");
            let pruned = event.field("pruned").expect("pruned field");
            let evaluated = event.field("evaluated").expect("evaluated field");
            assert_eq!(space, exhaustive_count + 1.0, "space counts every config");
            assert_eq!(
                visited,
                expanded + pruned,
                "pruning ledger must balance (budget {budget})"
            );
            assert!(
                evaluated <= exhaustive_count,
                "pruned search evaluated {evaluated} leaves, exhaustive \
                 enumeration scores only {exhaustive_count} (budget {budget})"
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        NUM_PHASES * 3,
        "every phase of every solve checked"
    );
    println!("bench-smoke: pruning ledger balanced across {checked} phase solves");
}

criterion_group!(benches, bench_optimize, bench_predict);

fn main() {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        pruning_smoke();
        return;
    }
    benches();
}
