//! Ablation: how much does phase granularity buy? OPPROX's validated
//! optimization at 1, 2, 4, and 8 phases, at a 10% budget.
//!
//! One phase is the "phase-agnostic but modeled" configuration — the
//! fairest modeled baseline — so the delta from 1 → 4 phases isolates
//! the paper's core contribution.

use opprox_approx_rt::InputParams;
use opprox_bench::TextTable;
use opprox_core::pipeline::{Opprox, TrainingOptions};
use opprox_core::report::percent_less_work;
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;

fn main() {
    println!("Ablation — benefit vs phase granularity (10% budget)\n");

    let prod_inputs: Vec<(&str, Vec<f64>)> = vec![
        ("LULESH", vec![64.0, 2.0]),
        ("FFmpeg", vec![16.0, 5.0, 600.0, 0.0]),
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("PSO", vec![20.0, 4.0]),
        ("CoMD", vec![3.0, 1.2, 150.0]),
        ("PageRank", vec![64.0, 4.0, 100.0]),
        ("StreamAgg", vec![96.0, 50.0]),
        ("Stencil", vec![20.0, 50.0]),
    ];

    let mut table = TextTable::new(vec![
        "app".into(),
        "1 phase %".into(),
        "2 phases %".into(),
        "4 phases %".into(),
        "8 phases %".into(),
    ]);

    for app in opprox_apps::registry::all_apps() {
        let name = app.meta().name.clone();
        let input = InputParams::new(
            prod_inputs
                .iter()
                .find(|(n, _)| *n == name)
                .expect("input")
                .1
                .clone(),
        );
        let budget = if name == "FFmpeg" { 40.0 } else { 10.0 };
        let mut cells = vec![name.clone()];
        for phases in [1usize, 2, 4, 8] {
            let opts = TrainingOptions {
                num_phases: Some(phases),
                sampling: SamplingPlan {
                    num_phases: phases,
                    sparse_samples: 30,
                    whole_run_samples: 0,
                    seed: 0xAB2,
                },
                ..TrainingOptions::default()
            };
            let trained = Opprox::train(app.as_ref(), &opts).expect("training");
            let outcome = OptimizeRequest::new(input.clone(), AccuracySpec::new(budget))
                .validate_on(app.as_ref())
                .run(&trained)
                .expect("optimization")
                .measured
                .expect("validated requests measure");
            assert!(
                outcome.qos <= budget,
                "{name} over budget at {phases} phases"
            );
            cells.push(format!("{:.1}", percent_less_work(outcome.speedup)));
        }
        table.add_row(cells);
    }
    println!("{}", table.render());
    println!(
        "Interpretation: moving from 1 phase (phase-agnostic, modeled) to\n\
         2–4 phases unlocks the cheap late-phase approximations; beyond the\n\
         application's natural granularity the benefit flattens while the\n\
         training cost keeps growing (Table 2)."
    );
}
