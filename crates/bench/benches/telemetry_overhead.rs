//! Criterion micro-benchmarks of the telemetry primitives.
//!
//! Telemetry is always on in the evaluation engine, so every counter
//! bump and span sits on the pipeline's hot path; this bench tracks the
//! per-operation cost (ISSUE budget: nanoseconds, not microseconds) and
//! the cost of snapshotting and exporting a populated registry.

use criterion::{criterion_group, criterion_main, Criterion};
use opprox_core::{ManualClock, Telemetry};
use std::sync::Arc;

fn populated() -> Telemetry {
    let tele = Telemetry::with_clock(Arc::new(ManualClock::new()));
    for i in 0..64 {
        tele.add(&format!("eval.exec[{i:#018x}]"), 1);
    }
    tele.add("eval.exec", 64);
    tele.set_gauge("eval.queue_depth", 8.0);
    let bounds = [1.0, 2.0, 4.0, 8.0];
    for i in 0..32 {
        tele.observe("ml.cv_solves_per_degree", &bounds, f64::from(i));
    }
    for i in 0..16 {
        tele.span("stage/train", || ());
        tele.event("optimize.phase", &[("solve", 0.0), ("step", f64::from(i))]);
    }
    tele
}

fn bench_primitives(c: &mut Criterion) {
    let clock = Arc::new(ManualClock::new());
    let tele = Telemetry::with_clock(clock.clone());
    c.bench_function("telemetry_counter_incr", |b| {
        b.iter(|| tele.incr("eval.exec"))
    });
    c.bench_function("telemetry_gauge_set", |b| {
        b.iter(|| tele.set_gauge("eval.queue_depth", 3.0))
    });
    let bounds = [1.0, 2.0, 4.0, 8.0];
    c.bench_function("telemetry_histogram_observe", |b| {
        b.iter(|| tele.observe("ml.cv_solves_per_degree", &bounds, 3.0))
    });
    c.bench_function("telemetry_span_empty", |b| {
        b.iter(|| tele.span("stage/bench", || ()))
    });
}

fn bench_export(c: &mut Criterion) {
    let tele = populated();
    c.bench_function("telemetry_report_snapshot", |b| b.iter(|| tele.report()));
    let report = tele.report();
    c.bench_function("telemetry_report_to_json", |b| b.iter(|| report.to_json()));
    c.bench_function("telemetry_report_to_chrome", |b| {
        b.iter(|| report.to_chrome_trace())
    });
    c.bench_function("telemetry_report_render_text", |b| {
        b.iter(|| report.render_text())
    });
}

criterion_group!(benches, bench_primitives, bench_export);
criterion_main!(benches);
