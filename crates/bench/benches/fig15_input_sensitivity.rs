//! Figure 15: phase-specific QoS/speedup behaviour is consistent across
//! input-parameter combinations (Bodytrack and LULESH).
//!
//! Four input combinations per application, four phases each; if the
//! phase trends agree across inputs, phase-aware approximation is not an
//! artifact of one particular input.

use opprox_approx_rt::InputParams;
use opprox_bench::runner::{default_probes, phase_probe_series, summarize};
use opprox_bench::TextTable;

fn main() {
    println!("Figure 15 — phase behaviour across input combinations\n");
    let cases: Vec<(&str, Vec<Vec<f64>>)> = vec![
        (
            "Bodytrack",
            vec![
                vec![3.0, 120.0, 24.0],
                vec![3.0, 200.0, 36.0],
                vec![4.0, 120.0, 36.0],
                vec![4.0, 200.0, 24.0],
            ],
        ),
        (
            "LULESH",
            vec![
                vec![48.0, 1.0],
                vec![48.0, 4.0],
                vec![80.0, 1.0],
                vec![80.0, 4.0],
            ],
        ),
    ];

    for (name, inputs) in cases {
        let app = opprox_apps::registry::by_name(name).expect("registered app");
        let probes = default_probes(app.as_ref(), 6, 0xF15);
        println!("--- {name} ---");
        let mut table = TextTable::new(vec![
            "input".into(),
            "ph1 qos".into(),
            "ph2 qos".into(),
            "ph3 qos".into(),
            "ph4 qos".into(),
            "ph1 spd".into(),
            "ph4 spd".into(),
            "trend".into(),
        ]);
        for params in inputs {
            let input = InputParams::new(params.clone());
            let points =
                phase_probe_series(app.as_ref(), &input, 4, &probes).expect("probe series");
            let s: Vec<_> = (0..4).map(|p| summarize(&points, Some(p))).collect();
            let trend_ok = s[0].mean_qos >= s[3].mean_qos;
            table.add_row(vec![
                format!("{params:?}"),
                format!("{:.2}", s[0].mean_qos),
                format!("{:.2}", s[1].mean_qos),
                format!("{:.2}", s[2].mean_qos),
                format!("{:.2}", s[3].mean_qos),
                format!("{:.3}", s[0].mean_speedup),
                format!("{:.3}", s[3].mean_speedup),
                if trend_ok {
                    "early>late".into()
                } else {
                    "INVERTED".into()
                },
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Expected shape (paper): for every input combination the QoS trend\n\
         is consistent — early phases are expensive to approximate, late\n\
         phases cheap — validating that phase-aware approximation is not\n\
         tied to a particular input."
    );
}
