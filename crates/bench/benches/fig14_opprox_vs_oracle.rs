//! Figure 14 — the headline result: OPPROX versus the phase-agnostic
//! exhaustive-search oracle of prior work, at three QoS budgets.
//!
//! For every application the oracle exhaustively executes each
//! whole-run configuration and keeps the fastest one within the budget.
//! OPPROX trains its phase-aware models once and then solves Algorithm 2
//! with bounded empirical validation. Budgets are 5 %, 10 %, and 20 % QoS
//! degradation; FFmpeg uses PSNR targets 30/20/10 dB like the paper.

use opprox_approx_rt::qos::PSNR_CAP;
use opprox_approx_rt::InputParams;
use opprox_bench::TextTable;
use opprox_core::oracle::phase_agnostic_oracle;
use opprox_core::pipeline::{Opprox, TrainingOptions};
use opprox_core::report::{percent_less_work, ComparisonRow};
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;

fn main() {
    println!("Figure 14 — OPPROX vs phase-agnostic exhaustive oracle");
    println!("(budgets: small = 5%, medium = 10%, large = 20% QoS degradation;");
    println!(" FFmpeg budgets are PSNR targets 30/20/10 dB)\n");

    let prod_inputs: Vec<(&str, Vec<f64>)> = vec![
        ("LULESH", vec![64.0, 2.0]),
        ("FFmpeg", vec![16.0, 5.0, 600.0, 0.0]),
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("PSO", vec![20.0, 4.0]),
        ("CoMD", vec![3.0, 1.2, 150.0]),
        ("PageRank", vec![64.0, 4.0, 100.0]),
        ("StreamAgg", vec![96.0, 50.0]),
        ("Stencil", vec![20.0, 50.0]),
    ];

    let mut rows: Vec<ComparisonRow> = Vec::new();
    for app in opprox_apps::registry::all_apps() {
        let name = app.meta().name.clone();
        let opts = TrainingOptions {
            num_phases: Some(4),
            sampling: SamplingPlan {
                num_phases: 4,
                sparse_samples: 36,
                whole_run_samples: 0,
                seed: 11,
            },
            ..TrainingOptions::default()
        };
        let trained = Opprox::train(app.as_ref(), &opts).expect("training");
        let input = InputParams::new(
            prod_inputs
                .iter()
                .find(|(n, _)| *n == name)
                .expect("production input")
                .1
                .clone(),
        );
        for nominal in [5.0, 10.0, 20.0] {
            // FFmpeg: PSNR targets 30/20/10 dB ⇔ degradation budgets.
            let budget = if name == "FFmpeg" {
                let target_psnr = match nominal as u32 {
                    5 => 30.0,
                    10 => 20.0,
                    _ => 10.0,
                };
                PSNR_CAP - target_psnr
            } else {
                nominal
            };
            let spec = AccuracySpec::new(budget);
            let outcome = OptimizeRequest::new(input.clone(), spec)
                .validate_on(app.as_ref())
                .run(&trained)
                .expect("validated optimization")
                .measured
                .expect("validated requests measure");
            let oracle = phase_agnostic_oracle(app.as_ref(), &input, &spec).expect("oracle");
            rows.push(ComparisonRow {
                app: name.clone(),
                budget: nominal,
                opprox_speedup: outcome.speedup,
                opprox_qos: outcome.qos,
                oracle_speedup: oracle.speedup,
                oracle_qos: oracle.qos,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "app".into(),
        "budget".into(),
        "OPPROX % less work".into(),
        "OPPROX qos".into(),
        "oracle % less work".into(),
        "oracle qos".into(),
    ]);
    for r in &rows {
        table.add_row(vec![
            r.app.clone(),
            format!("{:.0}%", r.budget),
            format!("{:.1}", r.opprox_percent()),
            format!("{:.2}", r.opprox_qos),
            format!("{:.1}", r.oracle_percent()),
            format!("{:.2}", r.oracle_qos),
        ]);
    }
    println!("{}", table.render());

    let mut avg = TextTable::new(vec![
        "budget".into(),
        "OPPROX avg % less work".into(),
        "oracle avg % less work".into(),
    ]);
    for budget in [5.0, 10.0, 20.0] {
        let sel: Vec<&ComparisonRow> = rows.iter().filter(|r| r.budget == budget).collect();
        let o: f64 = sel
            .iter()
            .map(|r| percent_less_work(r.opprox_speedup))
            .sum::<f64>()
            / sel.len() as f64;
        let b: f64 = sel
            .iter()
            .map(|r| percent_less_work(r.oracle_speedup))
            .sum::<f64>()
            / sel.len() as f64;
        avg.add_row(vec![
            format!("{budget:.0}%"),
            format!("{o:.1}"),
            format!("{b:.1}"),
        ]);
    }
    println!("{}", avg.render());
    println!(
        "Expected shape (paper): OPPROX beats the phase-agnostic oracle on\n\
         average at the small budget (paper: 14% vs 2%) because it can place\n\
         approximation in cheap late phases; at the large budget the two\n\
         are comparable (paper: 42% vs 37%), with the oracle ahead on some\n\
         applications (FFmpeg/Bodytrack in the paper)."
    );
}
