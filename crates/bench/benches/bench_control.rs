//! Closed-loop controller benchmark: the cost of an adaptive session
//! (`core::control`, DESIGN.md §16) against the offline validated path
//! it wraps, with and without an injected drift that forces a mid-run
//! re-plan. Committed baselines live in `BENCH_control.json` at the
//! workspace root.
//!
//! With `BENCH_SMOKE=1` the binary skips criterion entirely and runs
//! the controller smoke check instead (CI leg `bench-smoke`): a
//! zero-drift session must deliver the offline Algorithm 2 plan
//! untouched, and a seeded drift must re-plan within the QoS budget
//! while recovering at least the leftover budget the offline plan
//! strands — with the reclaim/redistribute ledger balanced, the X009
//! audit invariant.

use criterion::{criterion_group, Criterion};
use opprox_approx_rt::InputParams;
use opprox_apps::Pso;
use opprox_core::control::{run_adaptive, ControlOptions, DriftInjection};
use opprox_core::evaluator::EvalEngine;
use opprox_core::pipeline::{Opprox, TrainedOpprox, TrainingOptions};
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;

const BUDGET: f64 = 10.0;

fn train_pso() -> TrainedOpprox {
    let options = TrainingOptions {
        num_phases: Some(2),
        sampling: SamplingPlan {
            num_phases: 2,
            sparse_samples: 8,
            whole_run_samples: 0,
            seed: 5,
        },
        ..TrainingOptions::default()
    };
    Opprox::train(&Pso::new(), &options).expect("train PSO")
}

fn input() -> InputParams {
    InputParams::new(vec![16.0, 3.0])
}

fn drift(factor: f64) -> ControlOptions {
    ControlOptions {
        inject: Some(DriftInjection {
            phase: 0,
            factor,
            block: None,
        }),
        ..ControlOptions::default()
    }
}

fn bench_control(c: &mut Criterion) {
    let trained = train_pso();
    let app = Pso::new();
    let mut group = c.benchmark_group("control");
    group.sample_size(20);
    // The baseline an adaptive session should be compared against: one
    // offline solve plus one validating execution of the whole plan.
    group.bench_function("offline_validated", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(1);
            OptimizeRequest::new(input(), AccuracySpec::new(BUDGET))
                .validate_on(&app)
                .engine(&engine)
                .run(&trained)
                .unwrap()
        })
    });
    // Same work through the controller with nothing drifting: the delta
    // over `offline_validated` is the pure closed-loop overhead
    // (per-phase execution, band checks, signature comparison, ledger).
    group.bench_function("adaptive_no_drift", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(1);
            run_adaptive(
                &trained,
                &app,
                &engine,
                &input(),
                &AccuracySpec::new(BUDGET),
                &ControlOptions::default(),
            )
            .unwrap()
        })
    });
    // A drift injection large enough to re-plan: adds one Algorithm 2
    // solve over the remaining phases mid-session.
    group.bench_function("adaptive_seeded_drift", |b| {
        b.iter(|| {
            let engine = EvalEngine::new(1);
            run_adaptive(
                &trained,
                &app,
                &engine,
                &input(),
                &AccuracySpec::new(BUDGET),
                &drift(6.0),
            )
            .unwrap()
        })
    });
    group.finish();
}

/// The `bench-smoke` CI gate for the controller: the acceptance facts
/// `tests/control.rs` pins in-process, re-checked on the release build
/// the benchmarks measure.
fn control_smoke() {
    let trained = train_pso();
    let app = Pso::new();
    let spec = AccuracySpec::new(BUDGET);

    // Zero drift: the adaptive plan is the offline plan, untouched.
    let engine = EvalEngine::new(1);
    let clean = run_adaptive(
        &trained,
        &app,
        &engine,
        &input(),
        &spec,
        &ControlOptions::default(),
    )
    .expect("clean adaptive session");
    assert_eq!(clean.replans, 0, "zero-drift session re-planned");
    assert_eq!(
        clean.plan.phases, clean.offline.phases,
        "zero-drift adaptive plan diverged from the offline solve"
    );

    // Seeded drift: exactly the re-plan contract.
    let engine = EvalEngine::new(1);
    let drifted = run_adaptive(&trained, &app, &engine, &input(), &spec, &drift(6.0))
        .expect("drifted adaptive session");
    assert!(drifted.replans >= 1, "a 6x drift injection must re-plan");
    assert!(
        drifted.plan.predicted_qos <= BUDGET + 1e-9,
        "re-planned QoS {} exceeds the budget",
        drifted.plan.predicted_qos
    );
    let stranded = BUDGET - drifted.offline.predicted_qos;
    assert!(
        drifted.budget_redistributed >= stranded - 1e-9,
        "re-plan recovered {} < the {} the offline plan strands",
        drifted.budget_redistributed,
        stranded
    );
    let reclaimed: f64 = drifted.steps.iter().map(|s| s.budget_reclaimed).sum();
    let redistributed: f64 = drifted.steps.iter().map(|s| s.budget_redistributed).sum();
    assert!(
        (reclaimed - redistributed).abs() <= 1e-9 * reclaimed.abs().max(1.0),
        "controller ledger leaks budget: {reclaimed} vs {redistributed}"
    );
    println!(
        "bench-smoke: controller contract holds ({} steps, {} re-plans, {:.3} budget recovered)",
        drifted.steps.len(),
        drifted.replans,
        drifted.budget_redistributed
    );
}

criterion_group!(benches, bench_control);

fn main() {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        control_smoke();
        return;
    }
    benches();
}
