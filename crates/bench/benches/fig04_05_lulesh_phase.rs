//! Figures 4 and 5: LULESH phase-specific QoS degradation (Fig. 4) and
//! speedup (Fig. 5).
//!
//! The outer loop is divided into four equal phases; each probe
//! configuration is applied to one phase at a time (all other phases
//! accurate), and finally to the whole run ("All").

use opprox_approx_rt::InputParams;
use opprox_apps::Lulesh;
use opprox_bench::runner::{default_probes, phase_probe_series, summarize};
use opprox_bench::TextTable;

fn main() {
    let app = Lulesh::new();
    let input = InputParams::new(vec![64.0, 2.0]);
    let probes = default_probes(&app, 10, 0xF04);
    let points = phase_probe_series(&app, &input, 4, &probes).expect("probe series");

    println!("Figures 4 & 5 — LULESH phase-specific QoS degradation and speedup");
    println!("(4 equal phases; every point = one approximation setting)\n");

    let mut table = TextTable::new(vec![
        "phase".into(),
        "config".into(),
        "qos_degradation_%".into(),
        "speedup".into(),
        "iterations".into(),
    ]);
    for p in &points {
        let phase = match p.phase {
            Some(i) => format!("phase-{}", i + 1),
            None => "All".into(),
        };
        table.add_row(vec![
            phase,
            format!("{:?}", p.config.levels()),
            format!("{:.2}", p.qos),
            format!("{:.3}", p.speedup),
            p.outer_iters.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut summary = TextTable::new(vec![
        "column".into(),
        "mean qos %".into(),
        "max qos %".into(),
        "mean speedup".into(),
    ]);
    for col in [Some(0), Some(1), Some(2), Some(3), None] {
        let s = summarize(&points, col);
        summary.add_row(vec![
            match col {
                Some(i) => format!("phase-{}", i + 1),
                None => "All".into(),
            },
            format!("{:.2}", s.mean_qos),
            format!("{:.2}", s.max_qos),
            format!("{:.3}", s.mean_speedup),
        ]);
    }
    println!("{}", summary.render());
    println!(
        "Expected shape (paper Figs. 4/5): phase-1 approximation degrades\n\
         QoS drastically while phase-4 is nearly free; whole-run (\"All\")\n\
         error is comparable to phase-1's."
    );
}
