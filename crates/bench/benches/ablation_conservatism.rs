//! Ablation: the three optimizer modes.
//!
//! * **Band** — Algorithm 2 constrained on the conservative (upper-band)
//!   QoS predictions, the paper's default.
//! * **Point** — the same search constrained on point predictions.
//! * **Validated** — the bounded candidate-set search with real-execution
//!   vetting that the pipeline uses by default.
//!
//! The measured speedup AND whether the measured QoS stayed within budget
//! are reported for each — showing why validation is required when model
//! error is non-negligible.

use opprox_approx_rt::InputParams;
use opprox_bench::TextTable;
use opprox_core::optimizer::{optimize_with, Conservatism};
use opprox_core::pipeline::{Opprox, TrainingOptions};
use opprox_core::report::percent_less_work;
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;

fn main() {
    println!("Ablation — optimizer conservatism modes (10% budget)\n");

    let prod_inputs: Vec<(&str, Vec<f64>)> = vec![
        ("LULESH", vec![64.0, 2.0]),
        ("FFmpeg", vec![16.0, 5.0, 600.0, 0.0]),
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("PSO", vec![20.0, 4.0]),
        ("CoMD", vec![3.0, 1.2, 150.0]),
        ("PageRank", vec![64.0, 4.0, 100.0]),
        ("StreamAgg", vec![96.0, 50.0]),
        ("Stencil", vec![20.0, 50.0]),
    ];

    let mut table = TextTable::new(vec![
        "app".into(),
        "band % (in budget?)".into(),
        "point % (in budget?)".into(),
        "validated % (in budget?)".into(),
    ]);

    for app in opprox_apps::registry::all_apps() {
        let name = app.meta().name.clone();
        let input = InputParams::new(
            prod_inputs
                .iter()
                .find(|(n, _)| *n == name)
                .expect("input")
                .1
                .clone(),
        );
        let budget = if name == "FFmpeg" { 40.0 } else { 10.0 };
        let spec = AccuracySpec::new(budget);
        let opts = TrainingOptions {
            num_phases: Some(4),
            sampling: SamplingPlan {
                num_phases: 4,
                sparse_samples: 30,
                whole_run_samples: 0,
                seed: 0xAB3,
            },
            ..TrainingOptions::default()
        };
        let trained = Opprox::train(app.as_ref(), &opts).expect("training");
        let expected = trained.estimate_golden_iters(&input).expect("estimate");

        let mut cells = vec![name.clone()];
        for mode in [Conservatism::Band, Conservatism::Point] {
            let plan = optimize_with(
                trained.models(),
                &app.meta().blocks,
                &input,
                &spec,
                expected,
                mode,
            )
            .expect("optimize");
            let outcome = trained
                .evaluate(app.as_ref(), &input, &plan)
                .expect("evaluate");
            cells.push(format!(
                "{:+.1} ({})",
                percent_less_work(outcome.speedup),
                if outcome.qos <= budget { "yes" } else { "NO" }
            ));
        }
        let outcome = OptimizeRequest::new(input.clone(), spec)
            .validate_on(app.as_ref())
            .run(&trained)
            .expect("validated")
            .measured
            .expect("validated requests measure");
        cells.push(format!(
            "{:+.1} ({})",
            percent_less_work(outcome.speedup),
            if outcome.qos <= budget { "yes" } else { "NO" }
        ));
        table.add_row(cells);
    }
    println!("{}", table.render());
    println!(
        "Interpretation: band-constrained search is safe but often finds\n\
         nothing; point-constrained search finds more but can bust the\n\
         budget (or even slow the app down) where model error is large;\n\
         validation keeps the aggression while restoring the guarantee."
    );
}
