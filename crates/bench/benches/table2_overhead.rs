//! Table 2: OPPROX's training and optimization times as the phase
//! granularity varies over 1, 2, 4, and 8 phases.
//!
//! Training (profiling + model fitting) is offline and done once;
//! optimization happens before scheduling each production job. Finer
//! granularity costs more in both, which is the trade-off Algorithm 1
//! balances.

use opprox_approx_rt::InputParams;
use opprox_bench::TextTable;
use opprox_core::pipeline::{Opprox, TrainingOptions};
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;
use std::time::Instant;

fn main() {
    println!("Table 2 — training and optimization time vs phase granularity\n");

    let prod_inputs: Vec<(&str, Vec<f64>)> = vec![
        ("LULESH", vec![64.0, 2.0]),
        ("FFmpeg", vec![16.0, 5.0, 600.0, 0.0]),
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("PSO", vec![20.0, 4.0]),
        ("CoMD", vec![3.0, 1.2, 150.0]),
        ("PageRank", vec![64.0, 4.0, 100.0]),
        ("StreamAgg", vec![96.0, 50.0]),
        ("Stencil", vec![20.0, 50.0]),
    ];

    let mut table = TextTable::new(vec![
        "app".into(),
        "train 1p (s)".into(),
        "train 2p (s)".into(),
        "train 4p (s)".into(),
        "train 8p (s)".into(),
        "opt 1p (ms)".into(),
        "opt 2p (ms)".into(),
        "opt 4p (ms)".into(),
        "opt 8p (ms)".into(),
    ]);

    for app in opprox_apps::registry::all_apps() {
        let name = app.meta().name.clone();
        let input = InputParams::new(
            prod_inputs
                .iter()
                .find(|(n, _)| *n == name)
                .expect("production input")
                .1
                .clone(),
        );
        let mut train_cells = Vec::new();
        let mut opt_cells = Vec::new();
        for phases in [1usize, 2, 4, 8] {
            let opts = TrainingOptions {
                num_phases: Some(phases),
                sampling: SamplingPlan {
                    num_phases: phases,
                    sparse_samples: 24,
                    whole_run_samples: 0,
                    seed: 0x7AB2,
                },
                ..TrainingOptions::default()
            };
            let t0 = Instant::now();
            let trained = Opprox::train(app.as_ref(), &opts).expect("training");
            train_cells.push(format!("{:.2}", t0.elapsed().as_secs_f64()));
            let t0 = Instant::now();
            let _ = OptimizeRequest::new(input.clone(), AccuracySpec::new(10.0))
                .run(&trained)
                .expect("optimization");
            opt_cells.push(format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3));
        }
        let mut row = vec![name];
        row.extend(train_cells);
        row.extend(opt_cells);
        table.add_row(row);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper Table 2): training time grows steeply with\n\
         the phase count (more per-phase profiling and models) and the\n\
         optimization time grows roughly linearly in the phase count;\n\
         both are negligible next to long production runs."
    );
}
