//! Figures 12 and 13: prediction accuracy of the QoS-degradation
//! (Fig. 12) and speedup (Fig. 13) models.
//!
//! Following the paper's protocol, the profiled samples are randomly
//! partitioned into two equal-sized non-overlapping parts; the first is
//! used for training and the second for testing. The diagonal-scatter
//! plots of the paper are summarized here as R² scores plus a sample of
//! (actual, predicted) pairs per application.

use opprox_apps::registry::all_apps;
use opprox_bench::TextTable;
use opprox_core::modeling::{AppModels, ModelingOptions};
use opprox_core::sampling::{collect_training_data, SamplingPlan, TrainingData};
use opprox_linalg::stats::r2_score;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    println!("Figures 12 & 13 — prediction accuracy of the QoS and speedup models");
    println!("(50/50 random train/test split of the profiled samples)\n");

    let mut summary = TextTable::new(vec![
        "app".into(),
        "test samples".into(),
        "qos R² (log space)".into(),
        "speedup R² (log space)".into(),
    ]);

    for app in all_apps() {
        let name = app.meta().name.clone();
        let plan = SamplingPlan {
            num_phases: 4,
            sparse_samples: 36,
            whole_run_samples: 0,
            seed: 0xF12,
        };
        let data = collect_training_data(app.as_ref(), &app.representative_inputs(), &plan)
            .expect("training data");

        // Random 50/50 split, deterministic per app.
        let mut indices: Vec<usize> = (0..data.records.len()).collect();
        let mut rng = StdRng::seed_from_u64(0xF12F13);
        indices.shuffle(&mut rng);
        let half = indices.len() / 2;
        let train_set: std::collections::HashSet<usize> = indices[..half].iter().copied().collect();
        let mut train = TrainingData {
            goldens: data.goldens.clone(),
            records: Vec::new(),
        };
        let mut test = Vec::new();
        for (i, r) in data.records.iter().enumerate() {
            if train_set.contains(&i) {
                train.records.push(r.clone());
            } else {
                test.push(r.clone());
            }
        }

        let models = AppModels::fit(&train, 4, &ModelingOptions::default()).expect("fit");

        // Compare in log space, where the models operate and where the
        // paper-style diagonal plot is meaningful for heavy-tailed QoS.
        let mut qos_actual = Vec::new();
        let mut qos_pred = Vec::new();
        let mut sp_actual = Vec::new();
        let mut sp_pred = Vec::new();
        for r in &test {
            let Some(phase) = r.phase else { continue };
            let p = models
                .predict_point(&r.input, phase, &r.config)
                .expect("prediction");
            qos_actual.push(r.qos.max(0.0).ln_1p());
            qos_pred.push(p.qos.max(0.0).ln_1p());
            sp_actual.push(r.speedup.max(1e-6).ln());
            sp_pred.push(p.speedup.max(1e-6).ln());
        }
        let qos_r2 = r2_score(&qos_actual, &qos_pred);
        let sp_r2 = r2_score(&sp_actual, &sp_pred);
        summary.add_row(vec![
            name.clone(),
            qos_actual.len().to_string(),
            format!("{qos_r2:.3}"),
            format!("{sp_r2:.3}"),
        ]);

        // A few scatter points (original units) for eyeballing.
        let mut scatter = TextTable::new(vec![
            "actual qos %".into(),
            "predicted qos %".into(),
            "actual speedup".into(),
            "predicted speedup".into(),
        ]);
        for r in test.iter().step_by((test.len() / 8).max(1)).take(8) {
            let Some(phase) = r.phase else { continue };
            let p = models
                .predict_point(&r.input, phase, &r.config)
                .expect("prediction");
            scatter.add_row(vec![
                format!("{:.2}", r.qos),
                format!("{:.2}", p.qos),
                format!("{:.3}", r.speedup),
                format!("{:.3}", p.speedup),
            ]);
        }
        println!("--- {name} ---");
        println!("{}", scatter.render());
    }

    println!("{}", summary.render());
    println!(
        "Expected shape (paper): speedup models are accurate for every\n\
         application; QoS models are accurate for FFmpeg and PSO and show\n\
         higher (but still usable) error for LULESH, Bodytrack and CoMD."
    );
}
