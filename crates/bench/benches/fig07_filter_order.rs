//! Figure 7: changing the order of the FFmpeg filters (deflate and edge
//! detection) significantly changes the QoS degradation.
//!
//! The same approximation settings are applied to both filter orders; the
//! two control flows respond differently, which is what motivates the
//! per-control-flow models of Sec. 3.4.

use opprox_approx_rt::config::sample_configs;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use opprox_apps::VideoPipeline;
use opprox_bench::TextTable;

fn main() {
    let app = VideoPipeline::new();
    let order0 = InputParams::new(vec![12.0, 4.0, 600.0, 0.0]); // edge → deflate
    let order1 = InputParams::new(vec![12.0, 4.0, 600.0, 1.0]); // deflate → edge
    let g0 = app.golden(&order0).expect("golden order 0");
    let g1 = app.golden(&order1).expect("golden order 1");

    println!("Figure 7 — FFmpeg: filter order changes the QoS degradation");
    println!(
        "(order 0 = edge→deflate→color, signature {:?}; order 1 = deflate→edge→color, signature {:?})\n",
        g0.log.control_flow_signature(),
        g1.log.control_flow_signature()
    );

    let mut table = TextTable::new(vec![
        "config".into(),
        "PSNR order-0 (dB)".into(),
        "PSNR order-1 (dB)".into(),
        "difference".into(),
    ]);
    for config in sample_configs(&app.meta().blocks, 10, 0xF07) {
        let schedule = PhaseSchedule::constant(config.clone());
        let r0 = app.run(&order0, &schedule).expect("run order 0");
        let r1 = app.run(&order1, &schedule).expect("run order 1");
        let p0 = app.psnr_of(&g0, &r0);
        let p1 = app.psnr_of(&g1, &r1);
        table.add_row(vec![
            format!("{:?}", config.levels()),
            format!("{p0:.2}"),
            format!("{p1:.2}"),
            format!("{:+.2}", p1 - p0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper): the same approximation setting yields\n\
         significantly different PSNR under the two filter orders, so the\n\
         control-flow class must be modeled separately."
    );
}
