//! Ablation: OPPROX's polynomial-regression pipeline (MIC filtering,
//! degree escalation, sub-model splitting) versus an M5-style model tree
//! — the model family used by Capri, the paper's closest related system.
//!
//! Both model families are fitted on the same per-app training half and
//! scored on the held-out half, for the QoS-degradation target in log
//! space (where both operate best on heavy-tailed data).

use opprox_apps::registry::all_apps;
use opprox_bench::TextTable;
use opprox_core::sampling::{collect_training_data, SamplingPlan};
use opprox_linalg::stats::r2_score;
use opprox_ml::m5::{ModelTree, ModelTreeParams};
use opprox_ml::model_select::{AutoFitConfig, TargetModel};
use opprox_ml::Dataset;

fn main() {
    println!("Ablation — polynomial pipeline vs M5 model tree (QoS target)\n");
    let mut table = TextTable::new(vec![
        "app".into(),
        "test rows".into(),
        "poly R²".into(),
        "m5 R²".into(),
        "m5 leaves".into(),
    ]);

    for app in all_apps() {
        let name = app.meta().name.clone();
        let plan = SamplingPlan {
            num_phases: 4,
            sparse_samples: 30,
            whole_run_samples: 0,
            seed: 0xAB1,
        };
        let data = collect_training_data(app.as_ref(), &app.representative_inputs(), &plan)
            .expect("training data");

        // Feature row: input params + levels + phase index; target:
        // ln(1 + qos). Alternate rows into train/test halves.
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for (i, r) in data.records.iter().enumerate() {
            let Some(phase) = r.phase else { continue };
            let mut row = r.input.values().to_vec();
            row.extend(r.config.levels().iter().map(|&l| l as f64));
            row.push(phase as f64);
            let y = r.qos.max(0.0).ln_1p();
            if i % 2 == 0 {
                train_x.push(row);
                train_y.push(y);
            } else {
                test_x.push(row);
                test_y.push(y);
            }
        }

        // Polynomial pipeline.
        let names: Vec<String> = (0..train_x[0].len()).map(|i| format!("f{i}")).collect();
        let mut ds = Dataset::new(names);
        for (row, &y) in train_x.iter().zip(train_y.iter()) {
            ds.push(row.clone(), y).expect("push");
        }
        let poly = TargetModel::fit(
            &ds,
            &AutoFitConfig {
                max_degree: 4,
                ..AutoFitConfig::default()
            },
        )
        .expect("poly fit");
        let poly_preds: Vec<f64> = test_x
            .iter()
            .map(|row| poly.predict(row).expect("poly predict"))
            .collect();

        // M5 model tree.
        let m5 = ModelTree::fit(&train_x, &train_y, ModelTreeParams::default()).expect("m5 fit");
        let m5_preds = m5.predict(&test_x).expect("m5 predict");

        table.add_row(vec![
            name,
            test_y.len().to_string(),
            format!("{:.3}", r2_score(&test_y, &poly_preds)),
            format!("{:.3}", r2_score(&test_y, &m5_preds)),
            m5.num_leaves().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Interpretation: neither family dominates — trees win where the\n\
         response is regime-like (Bodytrack, CoMD, PSO), polynomials win\n\
         where it is smooth (FFmpeg), and both struggle on LULESH's\n\
         stability cliff. Both are fitted here as single global models\n\
         over (params, levels, phase); OPPROX's per-phase two-step\n\
         pipeline — its actual contribution — is orthogonal to the model\n\
         family, as the paper argues in comparison with Capri."
    );
}
