//! Figure 11: QoS-degradation characteristics when the execution is
//! divided into 2, 4, and 8 phases (Bodytrack and LULESH).
//!
//! Finer granularity separates the phase behaviours until neighbouring
//! phases become indistinguishable — the property Algorithm 1's
//! granularity search exploits.

use opprox_approx_rt::InputParams;
use opprox_bench::runner::{default_probes, phase_probe_series, summarize};
use opprox_bench::TextTable;
use opprox_core::phases::{find_phase_granularity, max_qos_diff, PhaseSearchOptions};

fn main() {
    println!("Figure 11 — QoS degradation at 2/4/8-phase granularity\n");
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("LULESH", vec![64.0, 2.0]),
    ];
    for (name, params) in cases {
        let app = opprox_apps::registry::by_name(name).expect("registered app");
        let input = InputParams::new(params);
        let probes = default_probes(app.as_ref(), 6, 0xF11);
        println!("--- {name} ---");
        for n in [2usize, 4, 8] {
            let points =
                phase_probe_series(app.as_ref(), &input, n, &probes).expect("probe series");
            let mut table = TextTable::new(vec![
                format!("{n}-phase column"),
                "mean qos %".into(),
                "mean speedup".into(),
            ]);
            for ph in 0..n {
                let s = summarize(&points, Some(ph));
                table.add_row(vec![
                    format!("phase-{}", ph + 1),
                    format!("{:.2}", s.mean_qos),
                    format!("{:.3}", s.mean_speedup),
                ]);
            }
            println!("{}", table.render());
        }
        // Algorithm 1's view of the same data.
        let opts = PhaseSearchOptions {
            probe_configs: 6,
            seed: 0xF11,
            ..PhaseSearchOptions::default()
        };
        for n in [2usize, 4, 8] {
            let d = max_qos_diff(app.as_ref(), &input, n, &opts).expect("max qos diff");
            println!("max consecutive-phase QoS difference at N={n}: {d:.2}");
        }
        let chosen =
            find_phase_granularity(app.as_ref(), &input, &opts).expect("granularity search");
        println!("Algorithm 1 chooses N = {chosen}\n");
    }
    println!(
        "Expected shape (paper): 2 and 4 phases separate early from late\n\
         behaviour; at 8 phases neighbouring late phases become nearly\n\
         indistinguishable, so finer division stops paying off."
    );
}
