//! Table 1: application input parameters, approximation techniques, and
//! the size of the approximation search space.
//!
//! The paper's counts refer to its exact block/level choices; ours follow
//! from the ports' block definitions: per-phase level combinations raised
//! to the number of phases, times the representative-input count.

use opprox_approx_rt::config::config_space_size;
use opprox_bench::TextTable;

fn main() {
    println!("Table 1 — applications, parameters, techniques, search space\n");
    let mut table = TextTable::new(vec![
        "app".into(),
        "input parameters".into(),
        "approx. techniques".into(),
        "blocks".into(),
        "levels/phase".into(),
        "4-phase space".into(),
        "inputs".into(),
    ]);
    for app in opprox_apps::registry::all_apps() {
        let meta = app.meta();
        let mut techniques: Vec<String> = meta
            .blocks
            .iter()
            .map(|b| b.technique.to_string())
            .collect();
        techniques.sort();
        techniques.dedup();
        let per_phase = config_space_size(&meta.blocks);
        // Per-phase combinations compound across the 4 phases; report the
        // paper-style count in scientific notation.
        let four_phase = (per_phase as f64).powi(4);
        table.add_row(vec![
            meta.name.clone(),
            meta.input_param_names.join(", "),
            techniques.join(", "),
            meta.num_blocks().to_string(),
            per_phase.to_string(),
            format!("{four_phase:.2e}"),
            app.representative_inputs().len().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper Table 1): search spaces in the 10^4–10^6+\n\
         range per application — far beyond exhaustive phase-aware search,\n\
         which is why OPPROX models the space instead."
    );
}
