//! Criterion benchmarks of the modeling engine: full `AppModels::fit`
//! (the train-models stage) and optimizer-style prediction over an
//! exhaustive per-phase configuration space. Committed baselines live in
//! `BENCH_modeling.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use opprox_approx_rt::config::enumerate_configs;
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig};
use opprox_apps::Pso;
use opprox_core::modeling::{AppModels, ModelingOptions};
use opprox_core::sampling::{collect_training_data, SamplingPlan, TrainingData};

const NUM_PHASES: usize = 4;

fn training_data() -> TrainingData {
    let app = Pso::new();
    let inputs = vec![
        InputParams::new(vec![16.0, 3.0]),
        InputParams::new(vec![24.0, 4.0]),
    ];
    let plan = SamplingPlan {
        num_phases: NUM_PHASES,
        sparse_samples: 24,
        whole_run_samples: 0,
        seed: 7,
    };
    collect_training_data(&app, &inputs, &plan).expect("training data")
}

fn bench_train(c: &mut Criterion) {
    let data = training_data();
    let mut group = c.benchmark_group("train_models");
    group.sample_size(10);
    group.bench_function("pso", |b| {
        b.iter(|| AppModels::fit(&data, NUM_PHASES, &ModelingOptions::default()).unwrap())
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = training_data();
    let models = AppModels::fit(&data, NUM_PHASES, &ModelingOptions::default()).unwrap();
    let input = InputParams::new(vec![16.0, 3.0]);
    let configs: Vec<LevelConfig> = enumerate_configs(&Pso::new().meta().blocks)
        .filter(|c| !c.is_accurate())
        .collect();
    let mut group = c.benchmark_group("predict_phase");
    group.sample_size(20);
    group.bench_function("per_row", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for config in &configs {
                let point = models.predict_point(&input, 0, config).unwrap();
                let cons = models.predict(&input, 0, config).unwrap();
                acc += point.speedup + cons.qos;
            }
            acc
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let points = models.predict_point_batch(&input, 0, &configs).unwrap();
            let cons = models.predict_batch(&input, 0, &configs).unwrap();
            points
                .iter()
                .zip(&cons)
                .map(|(p, c)| p.speedup + c.qos)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_train, bench_predict);
criterion_main!(benches);
