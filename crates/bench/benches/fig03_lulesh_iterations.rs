//! Figure 3: variation in the number of iterations made by LULESH's
//! outer loop under different approximation-level combinations.
//!
//! The paper observed the accurate run iterating 921 times, growing to
//! 965 under some combinations (turning speedups into slowdowns). This
//! bench sweeps random combinations and reports the iteration spread.

use opprox_approx_rt::config::sample_configs;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use opprox_apps::Lulesh;
use opprox_bench::TextTable;

fn main() {
    let app = Lulesh::new();
    let input = InputParams::new(vec![64.0, 2.0]);
    let golden = app.golden(&input).expect("golden run");
    println!("Figure 3 — LULESH outer-loop iteration count vs approximation setting");
    println!("(accurate run: {} iterations)\n", golden.outer_iters);

    let mut table = TextTable::new(vec![
        "config (levels per block)".into(),
        "iterations".into(),
        "vs accurate".into(),
        "speedup".into(),
    ]);
    let mut min_iters = golden.outer_iters;
    let mut max_iters = golden.outer_iters;
    for config in sample_configs(&app.meta().blocks, 24, 0xF163) {
        let result = app
            .run(&input, &PhaseSchedule::constant(config.clone()))
            .expect("approximate run");
        min_iters = min_iters.min(result.outer_iters);
        max_iters = max_iters.max(result.outer_iters);
        let delta = result.outer_iters as i64 - golden.outer_iters as i64;
        table.add_row(vec![
            format!("{:?}", config.levels()),
            result.outer_iters.to_string(),
            format!("{delta:+}"),
            format!("{:.3}", golden.speedup_over(&result)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Iteration range across settings: {min_iters}..{max_iters} \
         (accurate: {}).",
        golden.outer_iters
    );
    println!(
        "Expected shape (paper): approximation changes the iteration count\n\
         in both directions; settings that lengthen the loop can slow the\n\
         application down despite doing less work per iteration."
    );
}
