//! Figure 8: OPPROX uses decision trees to predict input-parameter-
//! dependent control-flow variations.
//!
//! Trains the control-flow classifier on the video pipeline's
//! representative inputs (whose `filter_order` parameter selects between
//! two filter chains) and evaluates its predictions on held-out inputs.

use opprox_approx_rt::{ApproxApp, InputParams};
use opprox_apps::VideoPipeline;
use opprox_bench::TextTable;
use opprox_core::control_flow::ControlFlowModel;
use opprox_core::sampling::{collect_training_data, SamplingPlan};

fn main() {
    let app = VideoPipeline::new();
    let plan = SamplingPlan {
        num_phases: 2,
        sparse_samples: 2,
        whole_run_samples: 0,
        seed: 0xF08,
    };
    let data =
        collect_training_data(&app, &app.representative_inputs(), &plan).expect("training data");
    let model = ControlFlowModel::learn(&data).expect("control-flow model");

    println!("Figure 8 — decision-tree control-flow prediction (video pipeline)");
    println!("classes learned: {}\n", model.num_classes());

    let mut table = TextTable::new(vec![
        "input (fps, dur, bitrate, order)".into(),
        "predicted class".into(),
        "actual signature".into(),
        "correct".into(),
    ]);
    let mut correct = 0usize;
    let mut total = 0usize;
    for &(fps, dur, br, order) in &[
        (14.0, 5.0, 700.0, 0.0),
        (14.0, 5.0, 700.0, 1.0),
        (18.0, 3.0, 450.0, 0.0),
        (18.0, 3.0, 450.0, 1.0),
        (25.0, 4.0, 900.0, 0.0),
        (25.0, 4.0, 900.0, 1.0),
    ] {
        let input = InputParams::new(vec![fps, dur, br, order]);
        let predicted = model.predict(&input).expect("prediction");
        let golden = app.golden(&input).expect("golden run");
        let actual = model
            .class_of_signature(&golden.log.control_flow_signature())
            .expect("known signature");
        let ok = predicted == actual;
        correct += usize::from(ok);
        total += 1;
        table.add_row(vec![
            format!("({fps}, {dur}, {br}, {order})"),
            predicted.to_string(),
            format!("{:?} (class {actual})", golden.log.control_flow_signature()),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{}", table.render());
    println!(
        "Held-out control-flow prediction accuracy: {correct}/{total}.\n\
         Expected shape (paper): the tree keys on the input parameter that\n\
         selects the filter order and classifies unseen inputs correctly."
    );
}
