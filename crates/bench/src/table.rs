//! Plain-text table rendering for experiment output.

/// A simple fixed-width text table, printed by every figure/table bench so
//  experiment output is easy to eyeball and diff.
/// Columns are sized to their widest cell.
///
/// # Example
///
/// ```
/// use opprox_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["app".into(), "speedup".into()]);
/// t.add_row(vec!["LULESH".into(), "1.28".into()]);
/// let s = t.render();
/// assert!(s.contains("LULESH"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated.
    pub fn add_row(&mut self, mut row: Vec<String>) {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, &width) in widths.iter().enumerate().take(cols) {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long-header".into()]);
        t.add_row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     long-header"));
        assert!(lines[2].starts_with("xxxx  1"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.num_rows(), 2);
        let s = t.render();
        assert!(!s.contains('3'));
    }
}
