//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the OPPROX paper. The actual experiments live in the
//! `benches/` targets of this crate; see EXPERIMENTS.md at the repository
//! root for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod table;

pub use table::TextTable;
