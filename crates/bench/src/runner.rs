//! Shared experiment drivers used by the per-figure bench targets.

use opprox_approx_rt::config::sample_configs;
use opprox_approx_rt::{run_with_timeout, ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use opprox_core::error::OpproxError;

/// One point of a phase-probe series: a configuration applied to a single
/// phase (or the whole run), with its measured effects.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePoint {
    /// Phase index, or `None` for the whole-run ("All") column.
    pub phase: Option<usize>,
    /// The probed configuration.
    pub config: LevelConfig,
    /// Measured speedup (work ratio).
    pub speedup: f64,
    /// Measured QoS degradation.
    pub qos: f64,
    /// Measured outer-loop iterations.
    pub outer_iters: u64,
}

/// Runs the paper's phase-characterization protocol (Figs. 4/5/9/10):
/// for every phase, apply each probe configuration to that phase only
/// (everything else accurate), and finally to the whole run.
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn phase_probe_series(
    app: &dyn ApproxApp,
    input: &InputParams,
    num_phases: usize,
    probes: &[LevelConfig],
) -> Result<Vec<PhasePoint>, OpproxError> {
    phase_probe_series_with(app, input, num_phases, probes, None)
}

/// [`phase_probe_series`] with an optional per-execution wall-clock
/// budget. A probe series runs `num_phases × probes + probes + 1`
/// application executions back to back; without a budget a single
/// misbehaving execution used to stall the whole bench run. With
/// `timeout_ms` set, every execution — the golden included — goes through
/// [`run_with_timeout`] and a slow one surfaces as a typed
/// [`RuntimeError::Timeout`](opprox_approx_rt::RuntimeError::Timeout)
/// instead.
///
/// # Errors
///
/// Propagates application runtime errors, including timeouts.
pub fn phase_probe_series_with(
    app: &dyn ApproxApp,
    input: &InputParams,
    num_phases: usize,
    probes: &[LevelConfig],
    timeout_ms: Option<u64>,
) -> Result<Vec<PhasePoint>, OpproxError> {
    let execute = |schedule: &PhaseSchedule| match timeout_ms {
        Some(budget) => run_with_timeout(app, input, schedule, budget),
        None => app.run(input, schedule),
    };
    let golden = execute(&PhaseSchedule::accurate(app.meta().num_blocks()))?;
    let mut out = Vec::new();
    for phase in 0..num_phases {
        for config in probes {
            let schedule =
                PhaseSchedule::single_phase(config.clone(), phase, num_phases, golden.outer_iters)?;
            let result = execute(&schedule)?;
            out.push(PhasePoint {
                phase: Some(phase),
                config: config.clone(),
                speedup: golden.speedup_over(&result),
                qos: app.qos_degradation(&golden, &result),
                outer_iters: result.outer_iters,
            });
        }
    }
    for config in probes {
        let result = execute(&PhaseSchedule::constant(config.clone()))?;
        out.push(PhasePoint {
            phase: None,
            config: config.clone(),
            speedup: golden.speedup_over(&result),
            qos: app.qos_degradation(&golden, &result),
            outer_iters: result.outer_iters,
        });
    }
    Ok(out)
}

/// Default probe configurations for an application: a deterministic
/// sparse sample of its level space.
pub fn default_probes(app: &dyn ApproxApp, count: usize, seed: u64) -> Vec<LevelConfig> {
    sample_configs(&app.meta().blocks, count, seed)
}

/// Summary statistics of a phase-probe series for one phase column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// Mean QoS degradation across probes.
    pub mean_qos: f64,
    /// Maximum QoS degradation across probes.
    pub max_qos: f64,
    /// Mean speedup across probes.
    pub mean_speedup: f64,
}

/// Aggregates a probe series per phase column.
pub fn summarize(points: &[PhasePoint], phase: Option<usize>) -> PhaseSummary {
    let sel: Vec<&PhasePoint> = points.iter().filter(|p| p.phase == phase).collect();
    if sel.is_empty() {
        return PhaseSummary {
            mean_qos: 0.0,
            max_qos: 0.0,
            mean_speedup: 1.0,
        };
    }
    let n = sel.len() as f64;
    PhaseSummary {
        mean_qos: sel.iter().map(|p| p.qos).sum::<f64>() / n,
        max_qos: sel.iter().map(|p| p.qos).fold(0.0, f64::max),
        mean_speedup: sel.iter().map(|p| p.speedup).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_apps::Pso;

    #[test]
    fn probe_series_covers_all_phases_and_whole_run() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let probes = default_probes(&app, 2, 9);
        let pts = phase_probe_series(&app, &input, 3, &probes).unwrap();
        assert_eq!(pts.len(), 3 * 2 + 2);
        for ph in 0..3 {
            assert_eq!(pts.iter().filter(|p| p.phase == Some(ph)).count(), 2);
        }
        assert_eq!(pts.iter().filter(|p| p.phase.is_none()).count(), 2);
    }

    #[test]
    fn summaries_aggregate_per_column() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let probes = default_probes(&app, 3, 9);
        let pts = phase_probe_series(&app, &input, 2, &probes).unwrap();
        let s0 = summarize(&pts, Some(0));
        let s1 = summarize(&pts, Some(1));
        assert!(s0.mean_qos >= 0.0 && s1.mean_qos >= 0.0);
        assert!(s0.max_qos >= s0.mean_qos);
        // Early phase should degrade QoS more on average.
        assert!(s0.mean_qos >= s1.mean_qos);
    }

    /// Regression: the probe runner used to drive `app.run` directly with
    /// no time budget, so one stalled execution hung the entire bench
    /// target. A slow fixture app must now be cut off with a typed
    /// timeout, and the same series must pass under a generous budget.
    #[test]
    fn probe_runner_cuts_off_slow_apps() {
        use opprox_approx_rt::RuntimeError;
        use opprox_testutil::chaos::SlowApp;

        let app = SlowApp::new(Pso::new(), 25);
        let input = InputParams::new(vec![10.0, 2.0]);
        let probes = default_probes(&app, 1, 9);
        let err = phase_probe_series_with(&app, &input, 2, &probes, Some(1)).unwrap_err();
        assert!(
            matches!(
                err,
                OpproxError::Runtime(RuntimeError::Timeout { budget_ms: 1, .. })
            ),
            "expected a typed timeout, got {err}"
        );

        let pts = phase_probe_series_with(&app, &input, 2, &probes, Some(60_000))
            .expect("generous budget passes");
        assert_eq!(pts.len(), 2 + 1, "two phase points plus the All column");
    }

    #[test]
    fn empty_selection_yields_neutral_summary() {
        let s = summarize(&[], Some(0));
        assert_eq!(s.mean_speedup, 1.0);
        assert_eq!(s.mean_qos, 0.0);
    }
}
