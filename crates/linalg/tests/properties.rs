//! Property-based tests for the linear-algebra substrate.

use opprox_linalg::lstsq::{ridge_least_squares, solve_least_squares};
use opprox_linalg::qr::qr_decompose;
use opprox_linalg::stats::{mean, quantile, r2_score};
use opprox_linalg::Matrix;
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-100.0f64..100.0).prop_filter("finite", |v| v.is_finite())
}

fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_cols)
        .prop_flat_map(move |cols| {
            (cols..=max_rows.max(cols)).prop_flat_map(move |rows| {
                proptest::collection::vec(finite_f64(), rows * cols)
                    .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
            })
        })
        .boxed()
}

proptest! {
    #[test]
    fn qr_reconstructs_input(a in matrix_strategy(6, 4)) {
        let qr = qr_decompose(&a).unwrap();
        let recon = qr.q.matmul(&qr.r).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-8 * scale);
            }
        }
    }

    #[test]
    fn qr_q_is_orthogonal(a in matrix_strategy(6, 4)) {
        let qr = qr_decompose(&a).unwrap();
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        for i in 0..qtq.rows() {
            for j in 0..qtq.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((qtq.get(i, j) - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn least_squares_never_beats_truth_residual(
        rows in 3usize..8,
        beta0 in finite_f64(),
        beta1 in finite_f64(),
    ) {
        // Build an exact linear system; the solver must recover near-zero
        // residual.
        let xs: Vec<f64> = (0..rows).map(|i| i as f64).collect();
        let design: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let a = Matrix::from_row_vecs(&design).unwrap();
        let y: Vec<f64> = xs.iter().map(|&x| beta0 + beta1 * x).collect();
        let sol = solve_least_squares(&a, &y).unwrap();
        let pred = a.matvec(&sol).unwrap();
        let scale = y.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (p, t) in pred.iter().zip(y.iter()) {
            prop_assert!((p - t).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn ridge_residual_is_bounded_by_zero_vector_residual(
        a in matrix_strategy(6, 3),
        seed in 0u64..1000,
    ) {
        // The ridge solution must fit at least as well as predicting from
        // the zero coefficient vector once lambda is tiny.
        let y: Vec<f64> = (0..a.rows()).map(|i| ((i as u64 + seed) % 7) as f64 - 3.0).collect();
        if let Ok(x) = ridge_least_squares(&a, &y, 1e-8) {
            let pred = a.matvec(&x).unwrap();
            let resid: f64 = pred.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum();
            let zero_resid: f64 = y.iter().map(|t| t * t).sum();
            prop_assert!(resid <= zero_resid + 1e-6 * zero_resid.max(1.0));
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix_strategy(5, 5)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in proptest::collection::vec(finite_f64(), 1..20)) {
        let q25 = quantile(&xs, 0.25).unwrap();
        let q50 = quantile(&xs, 0.50).unwrap();
        let q75 = quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q75 + 1e-12);
    }

    #[test]
    fn quantile_within_data_range(xs in proptest::collection::vec(finite_f64(), 1..20), q in 0.0f64..1.0) {
        let v = quantile(&xs, q).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn mean_is_translation_equivariant(xs in proptest::collection::vec(finite_f64(), 1..20), shift in finite_f64()) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - (mean(&xs) + shift)).abs() < 1e-9);
    }

    #[test]
    fn r2_of_truth_is_one(xs in proptest::collection::vec(finite_f64(), 2..20)) {
        prop_assert!((r2_score(&xs, &xs) - 1.0).abs() < 1e-12);
    }
}
