//! Small dense linear-algebra and statistics substrate for the OPPROX
//! reproduction.
//!
//! The machine-learning layer of OPPROX (polynomial regression, decision
//! trees, MIC feature filtering) needs a handful of numerical primitives:
//! dense matrices, a stable least-squares solver, and summary statistics.
//! This crate implements them from scratch with no external numerical
//! dependencies so the whole reproduction is self-contained.
//!
//! # Overview
//!
//! * [`Matrix`] — a row-major dense matrix of `f64` with the usual
//!   arithmetic, slicing, and transposition operations.
//! * [`qr`] — Householder QR decomposition and QR-based least squares.
//! * [`cholesky`] — Cholesky decomposition for symmetric positive-definite
//!   systems (used for ridge-regularized normal equations).
//! * [`lstsq`] — a least-squares driver that prefers QR and falls back to a
//!   ridge-regularized solve when the design matrix is rank deficient.
//! * [`gram`] — Gram-system construction and rank-k downdating, the
//!   engine behind expand-once cross-validation.
//! * [`stats`] — means, variances, quantiles, Pearson correlation, and the
//!   coefficient of determination (R²).
//!
//! # Example
//!
//! ```
//! use opprox_linalg::{Matrix, lstsq::solve_least_squares};
//!
//! // Fit y = 1 + 2x by least squares.
//! let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
//! let y = [1.0, 3.0, 5.0];
//! let beta = solve_least_squares(&a, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-10);
//! assert!((beta[1] - 2.0).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod error;
pub mod gram;
pub mod lstsq;
pub mod matrix;
pub mod qr;
pub mod stats;

pub use error::LinalgError;
pub use matrix::Matrix;
