//! Least-squares drivers used by the regression layer.

use crate::cholesky::cholesky_solve;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::qr_least_squares;

/// Solves `min ‖A x − y‖₂`, preferring a QR solve and falling back to a
/// mildly ridge-regularized normal-equations solve when `A` is rank
/// deficient.
///
/// The fallback mirrors what OPPROX needs in practice: training matrices of
/// polynomial features are occasionally collinear (e.g. a knob that never
/// varies within a phase), and a tiny ridge term keeps the fit well posed
/// without meaningfully biasing the coefficients.
///
/// # Errors
///
/// Returns an error only if both solvers fail, which requires a degenerate
/// input (empty matrix, dimension mismatch).
pub fn solve_least_squares(a: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    match qr_least_squares(a, y) {
        Ok(x) => Ok(x),
        Err(LinalgError::Singular(_)) | Err(LinalgError::InvalidArgument(_)) => {
            ridge_least_squares(a, y, 1e-8)
        }
        Err(e) => Err(e),
    }
}

/// Solves the ridge-regularized least-squares problem
/// `min ‖A x − y‖₂² + λ ‖x‖₂²` via the normal equations
/// `(AᵀA + λI) x = Aᵀ y`.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `y.len() != a.rows()`.
/// * [`LinalgError::InvalidArgument`] if `lambda < 0` or `a` has no columns.
/// * [`LinalgError::Singular`] if the regularized Gram matrix is still not
///   positive definite (only possible for `lambda == 0`).
pub fn ridge_least_squares(a: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if lambda < 0.0 {
        return Err(LinalgError::InvalidArgument(format!(
            "ridge parameter must be non-negative, got {lambda}"
        )));
    }
    if a.cols() == 0 {
        return Err(LinalgError::InvalidArgument(
            "design matrix has no columns".into(),
        ));
    }
    if y.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "matrix has {} rows but rhs has length {}",
            a.rows(),
            y.len()
        )));
    }
    let mut gram = a.gram();
    // Scale the ridge term by the Gram diagonal magnitude so the
    // regularization strength is unit free.
    let diag_scale = (0..gram.rows())
        .map(|i| gram.get(i, i))
        .fold(0.0f64, f64::max)
        .max(1.0);
    for i in 0..gram.rows() {
        let v = gram.get(i, i);
        gram.set(i, i, v + lambda * diag_scale);
    }
    let aty = a.t_matvec(y)?;
    cholesky_solve(&gram, &aty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_posed_problem_uses_exact_solution() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let y = [1.0, 3.0, 5.0];
        let x = solve_least_squares(&a, &y).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_problem_falls_back_to_ridge() {
        // Columns are collinear; QR solve fails, ridge succeeds.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let y = [1.0, 2.0, 3.0];
        let x = solve_least_squares(&a, &y).unwrap();
        // Any solution must predict y well.
        let pred = a.matvec(&x).unwrap();
        for (p, t) in pred.iter().zip(y.iter()) {
            assert!((p - t).abs() < 1e-3, "{p} vs {t}");
        }
    }

    #[test]
    fn ridge_rejects_negative_lambda() {
        let a = Matrix::identity(2);
        assert!(ridge_least_squares(&a, &[1.0, 2.0], -1.0).is_err());
    }

    #[test]
    fn ridge_shrinks_towards_zero_with_huge_lambda() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let small = ridge_least_squares(&a, &[2.0, 2.0], 1e-9).unwrap();
        let big = ridge_least_squares(&a, &[2.0, 2.0], 1e6).unwrap();
        assert!(small[0] > 1.9);
        assert!(big[0].abs() < 0.1);
    }

    #[test]
    fn ridge_checks_dimensions() {
        let a = Matrix::identity(2);
        assert!(ridge_least_squares(&a, &[1.0], 0.1).is_err());
    }
}
