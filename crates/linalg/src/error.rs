//! Error type for linear-algebra operations.

use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ///
    /// Carries a human-readable description of the mismatch.
    DimensionMismatch(String),
    /// A decomposition failed because the matrix was singular (or not
    /// positive definite, for Cholesky) to working precision.
    Singular(String),
    /// An argument was empty or otherwise out of the routine's domain.
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::Singular(msg) => write!(f, "singular matrix: {msg}"),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variant_payloads() {
        let e = LinalgError::DimensionMismatch("2x3 * 2x2".into());
        assert_eq!(e.to_string(), "dimension mismatch: 2x3 * 2x2");
        let e = LinalgError::Singular("pivot 0".into());
        assert_eq!(e.to_string(), "singular matrix: pivot 0");
        let e = LinalgError::InvalidArgument("empty".into());
        assert_eq!(e.to_string(), "invalid argument: empty");
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&LinalgError::Singular("x".into()));
    }
}
