//! Gram-system construction and rank-k downdating for expand-once
//! cross-validation.
//!
//! Fitting a ridge regression on `n − m` rows does not require rebuilding
//! the design matrix: with the full Gram system `G = AᵀA`, `b = Aᵀy` in
//! hand, the train-side system of any held-out row set `H` is
//!
//! ```text
//! G_train = G − Σ_{i∈H} aᵢ aᵢᵀ        b_train = b − Σ_{i∈H} yᵢ aᵢ
//! ```
//!
//! a rank-`|H|` *downdate* followed by one Cholesky solve. k-fold
//! cross-validation therefore costs one full Gram accumulation plus `k`
//! cheap solves instead of `k` full refits.

use crate::cholesky::{cholesky_decompose, cholesky_solve, cholesky_solve_factored};
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// The normal-equations system `(AᵀA, Aᵀy)` of a design matrix, ready for
/// ridge solves and row-set downdates.
///
/// # Example
///
/// ```
/// use opprox_linalg::{Matrix, gram::GramSystem};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
/// let y = [1.0, 3.0, 5.0];
/// let full = GramSystem::from_design(&a, &y).unwrap();
/// let beta = full.solve_ridge(0.0).unwrap();
/// assert!((beta[1] - 2.0).abs() < 1e-10);
/// // Drop row 2 and re-solve without touching the design matrix again.
/// let sub = full.downdated(&a, &y, &[2]).unwrap();
/// let beta2 = sub.solve_ridge(0.0).unwrap();
/// assert!((beta2[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GramSystem {
    gram: Matrix,
    rhs: Vec<f64>,
}

impl GramSystem {
    /// Accumulates `AᵀA` and `Aᵀy` from a design matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` has no columns.
    /// * [`LinalgError::DimensionMismatch`] if `y.len() != a.rows()`.
    pub fn from_design(a: &Matrix, y: &[f64]) -> Result<Self, LinalgError> {
        if a.cols() == 0 {
            return Err(LinalgError::InvalidArgument(
                "design matrix has no columns".into(),
            ));
        }
        if y.len() != a.rows() {
            return Err(LinalgError::DimensionMismatch(format!(
                "matrix has {} rows but rhs has length {}",
                a.rows(),
                y.len()
            )));
        }
        Ok(GramSystem {
            gram: a.gram(),
            rhs: a.t_matvec(y)?,
        })
    }

    /// Number of unknowns (columns of the originating design matrix).
    pub fn dim(&self) -> usize {
        self.rhs.len()
    }

    /// Returns a new system with the contributions of `holdout` rows of
    /// the originating design matrix subtracted (a rank-k downdate).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a`/`y` do not match the
    ///   system's dimension or each other.
    /// * [`LinalgError::InvalidArgument`] if a holdout index is out of
    ///   range.
    pub fn downdated(&self, a: &Matrix, y: &[f64], holdout: &[usize]) -> Result<Self, LinalgError> {
        if a.cols() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "design has {} columns but system has dimension {}",
                a.cols(),
                self.dim()
            )));
        }
        if y.len() != a.rows() {
            return Err(LinalgError::DimensionMismatch(format!(
                "matrix has {} rows but rhs has length {}",
                a.rows(),
                y.len()
            )));
        }
        let mut out = self.clone();
        let p = out.dim();
        for &i in holdout {
            if i >= a.rows() {
                return Err(LinalgError::InvalidArgument(format!(
                    "holdout row {i} out of range for {} rows",
                    a.rows()
                )));
            }
            let row = a.row(i);
            for c in 0..p {
                let rc = row[c];
                if rc != 0.0 {
                    for (c2, &rc2) in row.iter().enumerate().take(p) {
                        let v = out.gram.get(c, c2) - rc * rc2;
                        out.gram.set(c, c2, v);
                    }
                }
                out.rhs[c] -= y[i] * rc;
            }
        }
        Ok(out)
    }

    /// Solves `(G + λ·s·I) β = b` where `s` scales the ridge term by the
    /// largest Gram diagonal (floored at 1), matching
    /// [`crate::lstsq::ridge_least_squares`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `lambda < 0`.
    /// * [`LinalgError::Singular`] if the regularized system is not
    ///   positive definite.
    pub fn solve_ridge(&self, lambda: f64) -> Result<Vec<f64>, LinalgError> {
        if lambda < 0.0 {
            return Err(LinalgError::InvalidArgument(format!(
                "ridge parameter must be non-negative, got {lambda}"
            )));
        }
        let p = self.dim();
        let mut gram = self.gram.clone();
        let diag_scale = (0..p)
            .map(|i| gram.get(i, i))
            .fold(0.0f64, f64::max)
            .max(1.0);
        for i in 0..p {
            let v = gram.get(i, i);
            gram.set(i, i, v + lambda * diag_scale);
        }
        cholesky_solve(&gram, &self.rhs)
    }

    /// Factors `G + λ·s·I` once (`s` as in [`GramSystem::solve_ridge`])
    /// for repeated holdout solves via [`RidgeFactor::solve_holdout`].
    ///
    /// # Errors
    ///
    /// Same as [`GramSystem::solve_ridge`].
    pub fn factor_ridge(&self, lambda: f64) -> Result<RidgeFactor, LinalgError> {
        if lambda < 0.0 {
            return Err(LinalgError::InvalidArgument(format!(
                "ridge parameter must be non-negative, got {lambda}"
            )));
        }
        let p = self.dim();
        let mut gram = self.gram.clone();
        let diag_scale = (0..p)
            .map(|i| gram.get(i, i))
            .fold(0.0f64, f64::max)
            .max(1.0);
        for i in 0..p {
            let v = gram.get(i, i);
            gram.set(i, i, v + lambda * diag_scale);
        }
        let l = cholesky_decompose(&gram)?;
        Ok(RidgeFactor {
            l,
            rhs: self.rhs.clone(),
        })
    }
}

/// A Cholesky factorization of a ridge-regularized Gram system
/// `M = G + λ·s·I`, amortized across many holdout solves.
///
/// Removing a row set `H` from the training data turns the system into
/// `(M − A_Hᵀ A_H) β = b − A_Hᵀ y_H` — a rank-`|H|` downdate. Instead of
/// re-factorizing per holdout (`O(p³)` each), the Woodbury identity
///
/// ```text
/// (M − UᵀU)⁻¹ = M⁻¹ + M⁻¹Uᵀ (I − U M⁻¹ Uᵀ)⁻¹ U M⁻¹
/// ```
///
/// reuses the single factorization: each holdout solve costs `|H| + 1`
/// pairs of triangular solves plus an `|H|×|H|` solve. k-fold CV drops
/// from `k + 1` factorizations to one.
///
/// The ridge scale `s` is the *full* system's largest Gram diagonal, not
/// the holdout subset's — for the `λ ≈ 1e-8` ridges used in fitting the
/// difference is far below the noise of the fold scores themselves.
#[derive(Debug, Clone)]
pub struct RidgeFactor {
    l: Matrix,
    rhs: Vec<f64>,
}

impl RidgeFactor {
    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.rhs.len()
    }

    /// Coefficients of the full (no holdout) system — bit-identical to
    /// [`GramSystem::solve_ridge`] at the same `lambda`.
    pub fn solve_full(&self) -> Vec<f64> {
        cholesky_solve_factored(&self.l, &self.rhs)
    }

    /// Coefficients of the system with the `holdout` rows of the
    /// originating design matrix removed, via the Woodbury identity.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a`/`y` do not match the
    ///   system's dimension or each other.
    /// * [`LinalgError::InvalidArgument`] if a holdout index is out of
    ///   range.
    /// * [`LinalgError::Singular`] if the downdated system is not
    ///   positive definite (e.g. too few rows remain).
    pub fn solve_holdout(
        &self,
        a: &Matrix,
        y: &[f64],
        holdout: &[usize],
    ) -> Result<Vec<f64>, LinalgError> {
        let p = self.dim();
        if a.cols() != p {
            return Err(LinalgError::DimensionMismatch(format!(
                "design has {} columns but system has dimension {}",
                a.cols(),
                p
            )));
        }
        if y.len() != a.rows() {
            return Err(LinalgError::DimensionMismatch(format!(
                "matrix has {} rows but rhs has length {}",
                a.rows(),
                y.len()
            )));
        }
        for &i in holdout {
            if i >= a.rows() {
                return Err(LinalgError::InvalidArgument(format!(
                    "holdout row {i} out of range for {} rows",
                    a.rows()
                )));
            }
        }
        let h = holdout.len();
        // Downdated right-hand side b_t = b − A_Hᵀ y_H.
        let mut bt = self.rhs.clone();
        for &i in holdout {
            let row = a.row(i);
            let yi = y[i];
            for (c, &rc) in row.iter().enumerate() {
                bt[c] -= yi * rc;
            }
        }
        let z = cholesky_solve_factored(&self.l, &bt);
        if h == 0 {
            return Ok(z);
        }
        // V = M⁻¹ A_Hᵀ, one triangular-solve pair per holdout row.
        let vs: Vec<Vec<f64>> = holdout
            .iter()
            .map(|&i| cholesky_solve_factored(&self.l, a.row(i)))
            .collect();
        // Capacitance C = I_h − A_H V (symmetric positive definite iff the
        // downdated system is) and c = A_H z.
        let mut cap = Matrix::zeros(h, h);
        let mut c = vec![0.0; h];
        for (j, &i) in holdout.iter().enumerate() {
            let row = a.row(i);
            for (k, v) in vs.iter().enumerate() {
                let dot: f64 = row.iter().zip(v).map(|(&r, &x)| r * x).sum();
                let val = if j == k { 1.0 - dot } else { -dot };
                cap.set(j, k, val);
            }
            c[j] = row.iter().zip(&z).map(|(&r, &x)| r * x).sum();
        }
        let w = cholesky_solve(&cap, &c)?;
        // β = z + V w.
        let mut beta = z;
        for (k, v) in vs.iter().enumerate() {
            let wk = w[k];
            for (b, &x) in beta.iter_mut().zip(v) {
                *b += wk * x;
            }
        }
        Ok(beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::ridge_least_squares;

    fn design() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let x = i as f64 * 0.5;
                vec![1.0, x, x * x]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 - r[1] + 0.3 * r[2]).collect();
        (Matrix::from_row_vecs(&rows).unwrap(), y)
    }

    #[test]
    fn full_solve_matches_ridge_least_squares_bitwise() {
        let (a, y) = design();
        let direct = ridge_least_squares(&a, &y, 1e-8).unwrap();
        let via_gram = GramSystem::from_design(&a, &y)
            .unwrap()
            .solve_ridge(1e-8)
            .unwrap();
        // Same Gram accumulation order, same scaling, same solver — the
        // two paths must agree to the last bit.
        for (d, g) in direct.iter().zip(via_gram.iter()) {
            assert_eq!(d.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn downdate_equals_refit_on_remaining_rows() {
        let (a, y) = design();
        let full = GramSystem::from_design(&a, &y).unwrap();
        let holdout = [1usize, 4, 7];
        let sub = full.downdated(&a, &y, &holdout).unwrap();
        let beta = sub.solve_ridge(1e-8).unwrap();

        let kept: Vec<usize> = (0..a.rows()).filter(|i| !holdout.contains(i)).collect();
        let rows: Vec<&[f64]> = kept.iter().map(|&i| a.row(i)).collect();
        let sub_a = Matrix::from_rows(&rows).unwrap();
        let sub_y: Vec<f64> = kept.iter().map(|&i| y[i]).collect();
        let direct = ridge_least_squares(&sub_a, &sub_y, 1e-8).unwrap();
        for (b1, b2) in beta.iter().zip(direct.iter()) {
            assert!((b1 - b2).abs() < 1e-8, "{b1} vs {b2}");
        }
    }

    #[test]
    fn downdate_rejects_out_of_range_rows() {
        let (a, y) = design();
        let full = GramSystem::from_design(&a, &y).unwrap();
        assert!(full.downdated(&a, &y, &[99]).is_err());
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let (a, y) = design();
        assert!(GramSystem::from_design(&a, &y[..3]).is_err());
        assert!(GramSystem::from_design(&Matrix::zeros(3, 0), &[0.0; 3]).is_err());
        let full = GramSystem::from_design(&a, &y).unwrap();
        let narrow = Matrix::zeros(12, 2);
        assert!(full.downdated(&narrow, &y, &[0]).is_err());
    }

    #[test]
    fn negative_lambda_rejected() {
        let (a, y) = design();
        let full = GramSystem::from_design(&a, &y).unwrap();
        assert!(full.solve_ridge(-1.0).is_err());
    }

    #[test]
    fn factored_full_solve_is_bitwise_identical_to_solve_ridge() {
        let (a, y) = design();
        let full = GramSystem::from_design(&a, &y).unwrap();
        let direct = full.solve_ridge(1e-8).unwrap();
        let factored = full.factor_ridge(1e-8).unwrap().solve_full();
        for (d, f) in direct.iter().zip(factored.iter()) {
            assert_eq!(d.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn woodbury_holdout_matches_explicit_downdate() {
        let (a, y) = design();
        let full = GramSystem::from_design(&a, &y).unwrap();
        let lambda = 1e-8;
        let factor = full.factor_ridge(lambda).unwrap();
        // The factor's ridge shift is λ · max(diag(G_full)); apply the
        // same absolute shift to the explicit sub-system so the
        // comparison isolates the Woodbury algebra from the (documented)
        // ridge-scale difference.
        let shift = lambda
            * (0..full.dim())
                .map(|i| full.gram.get(i, i))
                .fold(0.0f64, f64::max)
                .max(1.0);
        for holdout in [vec![0usize], vec![1, 4, 7], vec![2, 3, 9, 11]] {
            let woodbury = factor.solve_holdout(&a, &y, &holdout).unwrap();
            let sub = full.downdated(&a, &y, &holdout).unwrap();
            let mut shifted = sub.gram.clone();
            for i in 0..sub.dim() {
                let v = shifted.get(i, i);
                shifted.set(i, i, v + shift);
            }
            let explicit = cholesky_solve(&shifted, &sub.rhs).unwrap();
            for (w, e) in woodbury.iter().zip(explicit.iter()) {
                assert!((w - e).abs() < 1e-7, "{w} vs {e} for {holdout:?}");
            }
        }
    }

    #[test]
    fn empty_holdout_equals_full_solve() {
        let (a, y) = design();
        let factor = GramSystem::from_design(&a, &y)
            .unwrap()
            .factor_ridge(1e-8)
            .unwrap();
        assert_eq!(
            factor.solve_holdout(&a, &y, &[]).unwrap(),
            factor.solve_full()
        );
    }

    #[test]
    fn holdout_solver_validates_inputs() {
        let (a, y) = design();
        let factor = GramSystem::from_design(&a, &y)
            .unwrap()
            .factor_ridge(1e-8)
            .unwrap();
        assert!(factor.solve_holdout(&a, &y, &[99]).is_err());
        assert!(factor
            .solve_holdout(&Matrix::zeros(12, 2), &y, &[0])
            .is_err());
        assert!(factor.solve_holdout(&a, &y[..3], &[0]).is_err());
        assert!(GramSystem::from_design(&a, &y)
            .unwrap()
            .factor_ridge(-1.0)
            .is_err());
    }

    #[test]
    fn downdating_all_but_too_few_rows_goes_singular() {
        let (a, y) = design();
        let full = GramSystem::from_design(&a, &y).unwrap();
        // Remove all but one row: a 3-unknown system from one equation
        // cannot be positive definite at lambda = 0.
        let holdout: Vec<usize> = (1..a.rows()).collect();
        let sub = full.downdated(&a, &y, &holdout).unwrap();
        assert!(sub.solve_ridge(0.0).is_err());
    }
}
