//! Householder QR decomposition and QR-based least squares.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// The result of a Householder QR decomposition `A = Q R`.
///
/// `q` is `m × m` orthogonal and `r` is `m × n` upper triangular (only the
/// top `n × n` block is nonzero when `m ≥ n`).
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// The orthogonal factor.
    pub q: Matrix,
    /// The upper-triangular factor.
    pub r: Matrix,
}

/// Computes the full Householder QR decomposition of `a`.
///
/// Works for any `m × n` matrix with `m ≥ n`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] when `m < n` or the matrix is
/// empty.
///
/// # Example
///
/// ```
/// use opprox_linalg::{Matrix, qr::qr_decompose};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
/// let qr = qr_decompose(&a).unwrap();
/// let recon = qr.q.matmul(&qr.r).unwrap();
/// for i in 0..3 {
///     for j in 0..2 {
///         assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-10);
///     }
/// }
/// ```
pub fn qr_decompose(a: &Matrix) -> Result<QrDecomposition, LinalgError> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument("empty matrix".into()));
    }
    if m < n {
        return Err(LinalgError::InvalidArgument(format!(
            "QR requires rows >= cols, got {m}x{n}"
        )));
    }

    let mut r = a.clone();
    let mut q = Matrix::identity(m);

    for k in 0..n.min(m - 1) {
        // Build the Householder reflector for column k.
        let mut norm = 0.0;
        for i in k..m {
            let v = r.get(i, k);
            norm += v * v;
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            continue; // Column already zero below the diagonal.
        }
        let alpha = if r.get(k, k) >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r.get(k, k) - alpha;
        for i in (k + 1)..m {
            v[i - k] = r.get(i, k);
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }

        // Apply H = I - 2 v vᵀ / (vᵀ v) to R (rows k..m).
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r.get(i, j);
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                let cur = r.get(i, j);
                r.set(i, j, cur - scale * v[i - k]);
            }
        }
        // Accumulate Q = Q Hᵀ (H is symmetric, so Q = Q H).
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q.get(i, j) * v[j - k];
            }
            let scale = 2.0 * dot / vnorm2;
            for j in k..m {
                let cur = q.get(i, j);
                q.set(i, j, cur - scale * v[j - k]);
            }
        }
    }

    // Clean tiny below-diagonal residue for numerical hygiene.
    for i in 0..m {
        for j in 0..n.min(i) {
            r.set(i, j, 0.0);
        }
    }

    Ok(QrDecomposition { q, r })
}

/// Solves the least-squares problem `min ‖A x − y‖₂` via QR.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `y.len() != a.rows()`.
/// * [`LinalgError::Singular`] if `R` has a (near-)zero diagonal entry,
///   i.e. `A` is rank deficient to working precision.
/// * [`LinalgError::InvalidArgument`] if `a.rows() < a.cols()`.
pub fn qr_least_squares(a: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if y.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "matrix has {} rows but rhs has length {}",
            a.rows(),
            y.len()
        )));
    }
    let qr = qr_decompose(a)?;
    let n = a.cols();
    // Compute Qᵀ y.
    let qty = qr.q.transpose().matvec(y)?;
    // Back-substitute R x = (Qᵀ y)[0..n].
    let mut x = vec![0.0; n];
    let scale = qr.r.frobenius_norm().max(1.0);
    for i in (0..n).rev() {
        let mut s = qty[i];
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            s -= qr.r.get(i, j) * xj;
        }
        let d = qr.r.get(i, i);
        if d.abs() < 1e-12 * scale {
            return Err(LinalgError::Singular(format!(
                "R[{i},{i}] = {d:e} during back-substitution"
            )));
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn qr_reconstructs_square_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]).unwrap();
        let qr = qr_decompose(&a).unwrap();
        let recon = qr.q.matmul(&qr.r).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(recon.get(i, j), a.get(i, j), 1e-10);
            }
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]).unwrap();
        let qr = qr_decompose(&a).unwrap();
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(qtq.get(i, j), expect, 1e-10);
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]).unwrap();
        let qr = qr_decompose(&a).unwrap();
        for i in 0..qr.r.rows() {
            for j in 0..qr.r.cols().min(i) {
                assert_eq!(qr.r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn least_squares_exact_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]).unwrap();
        let x = qr_least_squares(&a, &[3.0, 1.0]).unwrap();
        assert_close(x[0], 2.0, 1e-10);
        assert_close(x[1], 1.0, 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = 2x + 1 with noise-free samples.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let a = Matrix::from_row_vecs(&rows).unwrap();
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let beta = qr_least_squares(&a, &y).unwrap();
        assert_close(beta[0], 1.0, 1e-10);
        assert_close(beta[1], 2.0, 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[1.0, 1.5], &[1.0, 3.0], &[1.0, 4.5]]).unwrap();
        let y = [1.0, 2.0, 2.0, 5.0];
        let beta = qr_least_squares(&a, &y).unwrap();
        let pred = a.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&pred).map(|(yi, pi)| yi - pi).collect();
        let atr = a.t_matvec(&resid).unwrap();
        for v in atr {
            assert_close(v, 0.0, 1e-9);
        }
    }

    #[test]
    fn rank_deficient_matrix_is_reported_singular() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            qr_least_squares(&a, &[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(qr_decompose(&a).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(2);
        assert!(qr_least_squares(&a, &[1.0]).is_err());
    }
}
