//! Cholesky decomposition for symmetric positive-definite systems.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// The input must be square and symmetric positive definite; symmetry is
/// assumed (only the lower triangle is read).
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] if `a` is not square.
/// * [`LinalgError::Singular`] if a non-positive pivot is encountered,
///   i.e. `a` is not positive definite to working precision.
///
/// # Example
///
/// ```
/// use opprox_linalg::{Matrix, cholesky::cholesky_decompose};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let l = cholesky_decompose(&a).unwrap();
/// let recon = l.matmul(&l.transpose()).unwrap();
/// assert!((recon.get(0, 1) - 2.0).abs() < 1e-12);
/// ```
pub fn cholesky_decompose(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "Cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::Singular(format!(
                        "non-positive pivot {s:e} at row {i}"
                    )));
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Propagates the errors of [`cholesky_decompose`], plus
/// [`LinalgError::DimensionMismatch`] when `b.len() != a.rows()`.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "matrix has {} rows but rhs has length {}",
            a.rows(),
            b.len()
        )));
    }
    let l = cholesky_decompose(a)?;
    Ok(cholesky_solve_factored(&l, b))
}

/// Solves `L Lᵀ x = b` given an already-computed lower-triangular factor
/// `L` (two triangular solves, no factorization). `b.len()` must equal
/// `l.rows()`; this is the caller's responsibility.
pub fn cholesky_solve_factored(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // Forward solve L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for (k, &zk) in z.iter().enumerate().take(i) {
            s -= l.get(i, k) * zk;
        }
        z[i] = s / l.get(i, i);
    }
    // Back solve Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) * xk;
        }
        x[i] = s / l.get(i, i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_known_matrix() {
        // A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]] has the classic
        // factor L = [[2,0,0],[6,1,0],[-8,5,3]].
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let l = cholesky_decompose(&a).unwrap();
        let expect = [[2.0, 0.0, 0.0], [6.0, 1.0, 0.0], [-8.0, 5.0, 3.0]];
        for (i, row) in expect.iter().enumerate() {
            for (j, &e) in row.iter().enumerate() {
                assert!((l.get(i, j) - e).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_matches_direct_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let x = cholesky_solve(&a, &[10.0, 8.0]).unwrap();
        // Verify A x = b.
        let b = a.matvec(&x).unwrap();
        assert!((b[0] - 10.0).abs() < 1e-10);
        assert!((b[1] - 8.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(cholesky_decompose(&a).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            cholesky_decompose(&a),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        assert!(cholesky_solve(&a, &[1.0]).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.25];
        let x = cholesky_solve(&a, &b).unwrap();
        assert_eq!(x, b.to_vec());
    }
}
