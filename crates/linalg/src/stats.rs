//! Summary statistics used across the OPPROX modeling pipeline.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(opprox_linalg::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice. Returns `0.0` for slices with fewer than
/// two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Empirical quantile with linear interpolation between order statistics.
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// use opprox_linalg::stats::quantile;
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns `0.0` when either input has zero variance or the slices are
/// shorter than two elements.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson inputs must have equal length");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Coefficient of determination R² of predictions against truth.
///
/// `R² = 1 − SS_res / SS_tot`. When the truth has zero variance, returns
/// `1.0` if every prediction matches exactly and `0.0` otherwise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r2_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "r2 inputs must have equal length");
    if truth.is_empty() {
        return 0.0;
    }
    let m = mean(truth);
    let ss_tot: f64 = truth.iter().map(|t| (t - m) * (t - m)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(pred.iter())
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Root-mean-square error between truth and predictions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(
        truth.len(),
        pred.len(),
        "rmse inputs must have equal length"
    );
    if truth.is_empty() {
        return 0.0;
    }
    let ss: f64 = truth
        .iter()
        .zip(pred.iter())
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    (ss / truth.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn variance_and_std_dev() {
        assert_eq!(variance(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_and_interp() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 0.5), Some(20.0));
        assert_eq!(quantile(&xs, 1.0), Some(30.0));
        assert_eq!(quantile(&xs, 0.25), Some(15.0));
        assert_eq!(quantile(&[], 0.5), None);
        // Out-of-range q is clamped.
        assert_eq!(quantile(&xs, 2.0), Some(30.0));
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn r2_perfect_prediction_is_one() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&t, &t), 1.0);
    }

    #[test]
    fn r2_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2_score(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_truth_cases() {
        assert_eq!(r2_score(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r2_score(&[2.0, 2.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn rmse_hand_value() {
        let t = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&t, &p) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
