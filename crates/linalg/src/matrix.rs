//! Row-major dense matrix of `f64`.

use crate::error::LinalgError;
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container for the regression and
/// decomposition routines in this crate. It stores its elements in a
/// single contiguous `Vec<f64>` in row-major order.
///
/// # Example
///
/// ```
/// use opprox_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "buffer of length {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `rows` is empty and
    /// [`LinalgError::DimensionMismatch`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "cannot build a matrix from zero rows".into(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch(format!(
                    "row {} has length {}, expected {}",
                    i,
                    r.len(),
                    cols
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as a freshly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "{}x{} matrix times vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(x.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect())
    }

    /// Computes `Aᵀ A` (the Gram matrix), which is symmetric positive
    /// semi-definite.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, s);
                out.set(j, i, s);
            }
        }
        out
    }

    /// Computes `Aᵀ y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `y.len() != rows`.
    pub fn t_matvec(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "transpose of {}x{} matrix times vector of length {}",
                self.rows,
                self.cols,
                y.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.get(r, c) * yr;
            }
        }
        Ok(out)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the row length does
    /// not match the column count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "row of length {} pushed onto matrix with {} columns",
                row.len(),
                self.cols
            )));
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Builds a matrix by stacking owned rows; convenience over
    /// [`Matrix::from_rows`] for `Vec<Vec<f64>>` data.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::from_rows`].
    pub fn from_row_vecs(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let borrowed: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&borrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 2), 0.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn get_set_row_col() {
        let mut m = m22();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        m.set(0, 1, 9.0);
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = m22();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = m22();
        let b = Matrix::zeros(3, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = m22();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.t_matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn gram_is_ata() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let expect = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = m22();
        m.push_row(&[5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let m = m22();
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((m.frobenius_norm() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        m22().get(2, 0);
    }
}
