//! OPPROX — phase-aware optimization in approximate computing.
//!
//! Facade crate for the workspace reproducing Mitra et al., *Phase-Aware
//! Optimization in Approximate Computing* (CGO 2017). Re-exports every
//! workspace crate under one roof so downstream users can depend on a
//! single package:
//!
//! * [`core`] — the OPPROX system: training, modeling, optimization.
//! * [`analyze`] — semantic lints over serialized OPPROX artifacts.
//! * [`approx_rt`] — the approximation runtime applications link against.
//! * [`apps`] — the five benchmark application ports.
//! * [`ml`] — the from-scratch ML substrate.
//! * [`linalg`] — the numerical substrate.
//!
//! # Example
//!
//! ```
//! use opprox::approx_rt::InputParams;
//! use opprox::core::pipeline::{Opprox, TrainingOptions};
//! use opprox::core::sampling::SamplingPlan;
//! use opprox::core::AccuracySpec;
//! use opprox_apps::Pso;
//!
//! let app = Pso::new();
//! let opts = TrainingOptions {
//!     num_phases: Some(2),
//!     sampling: SamplingPlan { num_phases: 2, sparse_samples: 8, whole_run_samples: 0, seed: 7 },
//!     ..TrainingOptions::default()
//! };
//! let trained = Opprox::train(&app, &opts).unwrap();
//! let outcome = opprox::core::request::OptimizeRequest::new(
//!     InputParams::new(vec![16.0, 3.0]),
//!     AccuracySpec::new(10.0),
//! )
//! .run(&trained)
//! .unwrap();
//! assert_eq!(outcome.plan.schedule.num_phases(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use opprox_analyze as analyze;
pub use opprox_approx_rt as approx_rt;
pub use opprox_apps as apps;
pub use opprox_core as core;
pub use opprox_linalg as linalg;
pub use opprox_ml as ml;
