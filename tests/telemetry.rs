//! Trace-driven integration tests: pipeline invariants that were never
//! directly assertable before the telemetry subsystem existed.
//!
//! Each test drives the real pipeline through a
//! [`TraceCapture`](opprox_testutil::trace::TraceCapture)-built engine
//! (manual clock, so captured traces are exactly reproducible) and then
//! interrogates the [`TelemetryReport`] instead of the pipeline's return
//! value:
//!
//! * golden runs execute exactly once per input;
//! * Algorithm 2 visits phases in decreasing-ROI order and rolls
//!   leftover budget forward without losing any;
//! * quarantined cache keys are never re-executed;
//! * the JSON export is byte-identical across worker thread counts and
//!   same-seed reruns, and histogram bucket counts are invariant under
//!   execution-order shuffling.
//!
//! [`TelemetryReport`]: opprox::core::TelemetryReport

use opprox::approx_rt::config::sample_configs;
use opprox::approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use opprox::core::pipeline::Opprox;
use opprox::core::request::OptimizeRequest;
use opprox::core::{AccuracySpec, Telemetry};
use opprox_apps::Pso;
use opprox_testutil::chaos::ChaosScenario;
use opprox_testutil::fixtures::{fast_training_options, prod_input};
use opprox_testutil::rng::SplitMix64;
use opprox_testutil::trace::{optimize_solves, per_key_counters, TraceCapture};
use proptest::prelude::*;

/// Previously unasserted invariant #1: training executes every golden
/// run exactly once per input. The modeling self-check re-requests each
/// golden run, so a broken cache would re-execute them — visible only
/// through the per-key golden counters.
#[test]
fn golden_runs_execute_exactly_once_per_input() {
    let capture = TraceCapture::new();
    let engine = capture.engine(2);
    let app = Pso::new();
    Opprox::train_with(&engine, &app, &fast_training_options(2)).expect("training");
    let report = engine.telemetry_report();

    let goldens = per_key_counters(&report, "eval.golden.exec[");
    assert!(
        !goldens.is_empty(),
        "training must execute at least one golden run"
    );
    for (key, count) in &goldens {
        assert_eq!(*count, 1, "golden key {key} executed {count} times");
    }
    // The self-check's re-requests landed as cache hits, not executions.
    assert!(report.counter("eval.cache.hit") > 0);
    // ... and in fact *no* key was ever executed twice.
    for (key, count) in per_key_counters(&report, "eval.exec[") {
        assert_eq!(count, 1, "key {key} executed {count} times");
    }
}

/// Previously unasserted invariant #2: Algorithm 2's leftover-budget
/// redistribution visits phases in decreasing-ROI order, never invents
/// budget, and carries every unspent unit forward.
#[test]
fn leftover_redistribution_visits_phases_in_decreasing_roi_order() {
    let capture = TraceCapture::new();
    let engine = capture.engine(2);
    let app = Pso::new();
    let trained = Opprox::train_with(&engine, &app, &fast_training_options(2)).expect("training");
    // The validated path solves Algorithm 2 once per conservatism
    // candidate, so one run yields several solves to check.
    OptimizeRequest::new(prod_input("PSO"), AccuracySpec::new(10.0))
        .validate_on(&app)
        .engine(&engine)
        .run(&trained)
        .expect("validated optimization");

    let solves = optimize_solves(&engine.telemetry_report());
    assert!(!solves.is_empty(), "no optimize.phase events captured");
    for (s, steps) in solves.iter().enumerate() {
        assert!(!steps.is_empty(), "solve {s} recorded no steps");
        assert_eq!(steps[0].leftover_in, 0.0, "solve {s} started with leftover");
        for (i, step) in steps.iter().enumerate() {
            assert_eq!(step.step, i, "solve {s} visited steps out of order");
            assert!(step.allocated >= 0.0, "solve {s} allocated negative budget");
            if i > 0 {
                assert!(
                    step.roi <= steps[i - 1].roi,
                    "solve {s} step {i}: ROI {} after {} — not decreasing",
                    step.roi,
                    steps[i - 1].roi
                );
                assert_eq!(
                    step.leftover_in,
                    steps[i - 1].leftover_out,
                    "solve {s} step {i}: leftover budget leaked between steps"
                );
            }
        }
    }
}

/// Previously unasserted invariant #3: a quarantined key is never
/// executed again — re-requests are rejected before reaching the
/// application, which only the per-key counters can prove.
#[test]
fn quarantined_keys_are_never_reexecuted() {
    let capture = TraceCapture::new();
    // Every attempt fails: each key is dropped and quarantined on first
    // contact, and the second batch can only hit the quarantine wall.
    let scenario = ChaosScenario::seeded(0x51)
        .fail_first_attempts(10)
        .max_retries(1)
        .threads(2);
    let engine = capture.chaos_engine(&scenario);
    let app = Pso::new();
    let input = InputParams::new(vec![12.0, 2.0]);
    let jobs: Vec<(InputParams, PhaseSchedule)> = sample_configs(&app.meta().blocks, 3, 9)
        .into_iter()
        .map(|cfg| (input.clone(), PhaseSchedule::constant(cfg)))
        .collect();
    for outcome in engine.run_batch_resilient(&app, &jobs) {
        assert!(outcome.is_err(), "injected faults must fail every job");
    }
    for outcome in engine.run_batch_resilient(&app, &jobs) {
        assert!(outcome.is_err(), "quarantined jobs must stay failed");
    }

    let report = engine.telemetry_report();
    let quarantined = per_key_counters(&report, "eval.quarantine[");
    assert!(!quarantined.is_empty(), "no key was quarantined");
    assert!(report.counter("eval.quarantine.hit") > 0);
    for (key, _) in &quarantined {
        let exec_key = key.replace("eval.quarantine[", "eval.exec[");
        assert_eq!(
            report.counter(&exec_key),
            0,
            "quarantined key {key} was executed again"
        );
    }
    assert_eq!(report.counter("eval.exec"), 0, "no job ever succeeded");
}

fn train_trace_json(seed_offset: u64, threads: usize) -> String {
    let capture = TraceCapture::new();
    let engine = capture.engine(threads);
    let mut options = fast_training_options(2);
    options.sampling.seed ^= seed_offset;
    Opprox::train_with(&engine, &Pso::new(), &options).expect("training");
    engine.telemetry_report().to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The telemetry ledger discipline (commutative counters, fixed
    /// histogram bounds, orchestrator-only spans and events) makes the
    /// JSON export byte-identical across worker thread counts and
    /// same-seed reruns.
    #[test]
    fn trace_json_is_byte_identical_across_thread_counts_and_reruns(
        seed_offset in 0u64..1000,
        threads in 2usize..5,
    ) {
        let single = train_trace_json(seed_offset, 1);
        let multi = train_trace_json(seed_offset, threads);
        prop_assert_eq!(&single, &multi, "threads=1 vs threads={} diverged", threads);
        let again = train_trace_json(seed_offset, threads);
        prop_assert_eq!(&multi, &again, "same-seed rerun diverged");
    }

    /// Histogram bucket counts are a pure function of the observed
    /// multiset: shuffling the observation order changes nothing.
    #[test]
    fn histogram_buckets_are_invariant_under_observation_shuffling(
        values in proptest::collection::vec(-2.0f64..12.0, 1..40),
        shuffle_seed in 0u64..1000,
    ) {
        let bounds = [0.0, 2.5, 5.0, 7.5, 10.0];
        let mut shuffled = values.clone();
        let mut rng = SplitMix64::new(shuffle_seed);
        // Fisher–Yates driven by the seeded generator.
        for i in (1..shuffled.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        let record = |vals: &[f64]| {
            let t = Telemetry::new();
            for &v in vals {
                t.observe("h", &bounds, v);
            }
            t.report()
        };
        let a = record(&values);
        let b = record(&shuffled);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
        let h = a.histogram("h").expect("histogram registered");
        prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
    }
}
