//! Registry-driven `ApproxApp` conformance suite.
//!
//! Iterates every application in the built-in registry and holds it to
//! the contract the pipeline assumes (see
//! [`opprox_testutil::conformance`]). Adding a port to the registry adds
//! it to this suite automatically; a port that breaks a contract fails
//! here with the app and contract named.

use opprox_apps::registry::all_apps;
use opprox_testutil::conformance;

#[test]
fn every_registered_app_reproduces_golden_at_level_zero() {
    for app in all_apps() {
        conformance::assert_level_zero_reproduces_golden(app.as_ref());
    }
}

#[test]
fn every_registered_app_has_finite_nonnegative_qos() {
    for app in all_apps() {
        conformance::assert_qos_finite_and_nonnegative(app.as_ref());
    }
}

#[test]
fn every_registered_app_has_monotone_block_work() {
    for app in all_apps() {
        conformance::assert_block_work_monotone(app.as_ref());
    }
}

#[test]
fn every_registered_app_is_thread_count_invariant() {
    for app in all_apps() {
        conformance::assert_thread_count_invariance(app.as_ref());
    }
}

#[test]
fn every_registered_app_executes_every_declared_block() {
    for app in all_apps() {
        conformance::assert_declared_blocks_execute(app.as_ref());
    }
}
