//! Deterministic closed-loop controller suite (ManualClock-driven).
//!
//! Pins the adaptive-control contract end-to-end on the shared trained
//! PSO fixture:
//!
//! * a session with zero drift never re-plans, and its final phase-plan
//!   sequence is bitwise identical to the offline Algorithm 2 solve;
//! * a seeded drift injection re-plans exactly at the drifted phase,
//!   recovers at least the leftover budget the offline plan strands, and
//!   keeps the predicted QoS within the user budget;
//! * a block-targeted injection on an accurately executed phase moves
//!   the BBV signature and re-segments before re-optimizing;
//! * the `control.step` ledger balances (Σ reclaimed = Σ redistributed,
//!   the analyze X009 invariant);
//! * the exported control trace is byte-identical across worker thread
//!   counts and same-seed reruns (proptest).

use opprox::core::control::{run_adaptive, ControlOptions, ControlOutcome, DriftInjection};
use opprox::core::request::{OptimizePath, OptimizeRequest};
use opprox::core::{AccuracySpec, OpproxError};
use opprox_apps::Pso;
use opprox_testutil::fixtures::{prod_input, trained_pso};
use opprox_testutil::trace::TraceCapture;
use proptest::prelude::*;

const BUDGET: f64 = 10.0;

fn adaptive(options: &ControlOptions, threads: usize) -> ControlOutcome {
    let (trained, _) = trained_pso();
    let capture = TraceCapture::new();
    let engine = capture.engine(threads);
    run_adaptive(
        trained,
        &Pso::new(),
        &engine,
        &prod_input("PSO"),
        &AccuracySpec::new(BUDGET),
        options,
    )
    .expect("adaptive session")
}

/// Σ reclaimed must equal Σ redistributed step-ledger-wide — the same
/// conservation fact analyze rule X009 audits on the exported trace.
fn assert_ledger_balances(outcome: &ControlOutcome) {
    let reclaimed: f64 = outcome.steps.iter().map(|s| s.budget_reclaimed).sum();
    let redistributed: f64 = outcome.steps.iter().map(|s| s.budget_redistributed).sum();
    assert!(
        (reclaimed - redistributed).abs() <= 1e-9 * reclaimed.abs().max(1.0),
        "ledger leaks budget: reclaimed {reclaimed} vs redistributed {redistributed}"
    );
    assert!((reclaimed - outcome.budget_reclaimed).abs() <= 1e-9);
    assert!((redistributed - outcome.budget_redistributed).abs() <= 1e-9);
}

#[test]
fn no_drift_session_never_replans_and_matches_offline_algorithm2() {
    let outcome = adaptive(&ControlOptions::default(), 2);
    assert_eq!(outcome.replans, 0, "clean session must not re-plan");
    assert!(!outcome.resegmented);
    assert!(!outcome.degraded);
    for step in &outcome.steps {
        assert!(!step.drifted, "phase {} drifted on a clean run", step.phase);
        assert!(!step.replanned);
        assert!(!step.resegmented);
        assert_eq!(step.budget_reclaimed, 0.0);
        assert_eq!(step.budget_redistributed, 0.0);
    }
    // Bitwise identity with the offline solve: the adaptive plan is the
    // untouched Algorithm 2 output, down to the serialized bytes.
    let adaptive_bytes = serde_json::to_string(&outcome.plan.phases).unwrap();
    let offline_bytes = serde_json::to_string(&outcome.offline.phases).unwrap();
    assert_eq!(adaptive_bytes, offline_bytes);
    assert_eq!(outcome.plan.phases, outcome.offline.phases);
    assert!(outcome.measured.is_some());
    assert_ledger_balances(&outcome);
}

#[test]
fn seeded_drift_replans_exactly_at_the_drifted_phase() {
    let options = ControlOptions {
        inject: Some(DriftInjection {
            phase: 0,
            factor: 6.0,
            block: None,
        }),
        ..ControlOptions::default()
    };
    let outcome = adaptive(&options, 2);
    assert_eq!(outcome.replans, 1, "exactly one re-plan");
    assert!(outcome.steps[0].drifted);
    assert!(
        outcome.steps[0].replanned,
        "re-plan fires at the drifted phase"
    );
    for step in &outcome.steps[1..] {
        assert!(
            !step.replanned,
            "phase {} re-planned spuriously",
            step.phase
        );
    }

    // The re-planned schedule still honors the QoS constraint ...
    assert!(
        outcome.plan.predicted_qos <= BUDGET + 1e-9,
        "re-planned predicted QoS {} exceeds budget",
        outcome.plan.predicted_qos
    );
    // ... while recovering at least the leftover budget the offline
    // one-shot pass strands (its unspent remainder).
    let stranded = BUDGET - outcome.offline.predicted_qos;
    assert!(
        outcome.budget_redistributed >= stranded - 1e-9,
        "recovered {} < stranded {}",
        outcome.budget_redistributed,
        stranded
    );
    assert_ledger_balances(&outcome);
}

#[test]
fn block_targeted_drift_resegments_before_replanning() {
    let outcome = adaptive(&ControlOptions::default(), 1);
    // Precondition of the scenario: the fixture's offline plan keeps
    // phase 0 accurate, so its BBV signature is comparable to golden.
    assert!(
        outcome.offline.phases[0].config.is_accurate(),
        "fixture drifted: phase 0 is no longer accurate"
    );

    let options = ControlOptions {
        inject: Some(DriftInjection {
            phase: 0,
            factor: 8.0,
            block: Some(0),
        }),
        ..ControlOptions::default()
    };
    let outcome = adaptive(&options, 2);
    assert!(
        outcome.steps[0].resegmented,
        "block-skewed signature must re-segment at phase 0"
    );
    assert!(outcome.steps[0].replanned);
    assert!(outcome.resegmented);
    assert_ledger_balances(&outcome);
}

#[test]
fn disabling_resegmentation_leaves_block_skew_to_the_drift_metric() {
    let options = ControlOptions {
        resegment: false,
        inject: Some(DriftInjection {
            phase: 0,
            factor: 8.0,
            block: Some(0),
        }),
        ..ControlOptions::default()
    };
    let outcome = adaptive(&options, 2);
    assert!(!outcome.resegmented);
    assert!(outcome.steps.iter().all(|s| !s.resegmented));
    assert_ledger_balances(&outcome);
}

#[test]
fn adaptive_request_mode_reports_path_and_ledger() {
    let (trained, _) = trained_pso();
    let capture = TraceCapture::new();
    let engine = capture.engine(2);
    let app = Pso::new();
    let outcome = OptimizeRequest::new(prod_input("PSO"), AccuracySpec::new(BUDGET))
        .validate_on(&app)
        .engine(&engine)
        .adaptive(ControlOptions::default())
        .run(trained)
        .expect("adaptive request");
    assert_eq!(outcome.path, OptimizePath::Adaptive);
    let control = outcome
        .control
        .expect("adaptive outcome carries its ledger");
    assert_eq!(control.replans, 0);
    assert_eq!(control.steps.len(), trained.num_phases());
    assert!(outcome.measured.is_some());
    // The trace carries both ledgers: the offline solve's and the
    // controller's.
    assert!(!outcome.telemetry.events_named("optimize.phase").is_empty());
    assert_eq!(
        outcome.telemetry.events_named("control.step").len(),
        trained.num_phases()
    );
}

#[test]
fn adaptive_request_without_an_app_is_rejected() {
    let (trained, _) = trained_pso();
    let err = OptimizeRequest::new(prod_input("PSO"), AccuracySpec::new(BUDGET))
        .adaptive(ControlOptions::default())
        .run(trained)
        .unwrap_err();
    assert!(
        matches!(err, OpproxError::InvalidSpec(_)),
        "expected InvalidSpec, got {err}"
    );
}

/// One full adaptive session against a fresh manual-clock engine,
/// exported as JSON trace bytes.
fn control_trace_json(factor_millis: u64, threads: usize) -> String {
    let (trained, _) = trained_pso();
    let capture = TraceCapture::new();
    let engine = capture.engine(threads);
    let options = ControlOptions {
        inject: Some(DriftInjection {
            phase: 0,
            factor: 1.0 + factor_millis as f64 / 1000.0,
            block: None,
        }),
        ..ControlOptions::default()
    };
    run_adaptive(
        trained,
        &Pso::new(),
        &engine,
        &prod_input("PSO"),
        &AccuracySpec::new(BUDGET),
        &options,
    )
    .expect("adaptive session");
    engine.telemetry_report().to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The controller emits its ledger only from the orchestrating
    /// thread on the injected clock, so the exported `control` trace is
    /// byte-identical across `--threads 1` vs N and across reruns —
    /// whether or not the injected factor is large enough to re-plan.
    #[test]
    fn control_trace_is_byte_identical_across_threads_and_reruns(
        factor_millis in 0u64..9000,
        threads in 2usize..5,
    ) {
        let single = control_trace_json(factor_millis, 1);
        let multi = control_trace_json(factor_millis, threads);
        prop_assert_eq!(&single, &multi, "threads=1 vs threads={} diverged", threads);
        let again = control_trace_json(factor_millis, threads);
        prop_assert_eq!(&multi, &again, "same-seed rerun diverged");
    }
}
