//! The chaos matrix: the full train → optimize pipeline under every
//! injectable fault class, plus the determinism and cache-hygiene
//! properties of the recovery layer.
//!
//! The contract under test is *graceful degradation*: whatever the fault
//! plan injects, the pipeline either completes with a valid schedule or
//! returns a typed [`OpproxError`] — it never hangs, never unwinds an
//! uncaught panic, and never serves a failed evaluation from the cache.

use opprox::approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use opprox::core::control::{run_adaptive, ControlOptions};
use opprox::core::evaluator::EvalEngine;
use opprox::core::pipeline::Opprox;
use opprox::core::request::OptimizeRequest;
use opprox::core::AccuracySpec;
use opprox_apps::{Pso, StreamAgg};
use opprox_testutil::chaos::{ChaosScenario, FaultClass};
use opprox_testutil::fixtures::{fast_training_options, prod_input, trained_pso};
use proptest::prelude::*;

/// Every fault class, injected at a rate high enough to fire dozens of
/// times per training run: training and optimization must degrade —
/// dropped samples, retries, quarantines, a typed error at worst — and
/// never abort the process. The per-class counter proves the class
/// actually fired (the schedule is deterministic per seed, so these
/// assertions are stable). Generic over the application so the matrix
/// covers more than one workload shape.
fn assert_fault_matrix_degrades<A: ApproxApp>(app: A, seed: u64) {
    let name = app.meta().name.clone();
    for (class, scenario) in ChaosScenario::matrix(seed, 0.3) {
        let scenario = scenario.threads(2).max_retries(2);
        let engine = scenario.engine();
        let trained = Opprox::train_with(&engine, &app, &fast_training_options(2));
        let report = engine.robustness_report();
        assert!(
            report.injected_faults > 0,
            "{}: the plan never fired",
            class.label()
        );
        let fired = match class {
            FaultClass::Panic => report.panics_caught,
            FaultClass::Timeout => report.timeouts,
            FaultClass::NonFiniteQos => report.non_finite_results,
            FaultClass::PoisonedCache => report.poisoned_rejected,
        };
        assert!(fired > 0, "{}: class counter stayed zero", class.label());
        let trained = match trained {
            Ok(trained) => trained,
            // A typed error is acceptable degradation (e.g. every sample
            // of an input dropped); reaching here without a panic is the
            // point of the test.
            Err(e) => {
                assert!(!e.to_string().is_empty());
                continue;
            }
        };
        match OptimizeRequest::new(prod_input(&name), AccuracySpec::new(10.0))
            .validate_on(&app)
            .engine(&engine)
            .run(&trained)
        {
            Ok(result) => {
                app.meta()
                    .validate_schedule(&result.plan.schedule)
                    .unwrap_or_else(|e| {
                        panic!("{}: invalid schedule delivered: {e}", class.label())
                    });
                let ledger = result
                    .robustness
                    .expect("fault-injecting engines surface their ledger");
                assert!(ledger.has_activity(), "{}: empty ledger", class.label());
            }
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}

#[test]
fn chaos_matrix_every_fault_class_degrades_instead_of_aborting() {
    assert_fault_matrix_degrades(Pso::new(), 0xC4405);
}

/// The same matrix over a structurally different workload: StreamAgg's
/// streaming enumerator loop, 2-parameter input space, and survey
/// techniques (task skipping, precision scaling, memoization) exercise
/// recovery paths a convergence loop never hits.
#[test]
fn chaos_matrix_covers_a_streaming_workload() {
    assert_fault_matrix_degrades(StreamAgg::new(), 0xC4406);
}

/// The closed-loop controller under the same chaos matrix: every fault
/// class hits a mid-run adaptive session and the controller *degrades
/// instead of aborting* — the session completes (or returns a typed
/// error), the delivered plan still honors the QoS budget, the
/// `control.step` ledger stays balanced (budget quarantine strands is
/// redistributed, never leaked), and both the final plan and the fault
/// ledger are byte-identical across worker thread counts.
#[test]
fn chaos_matrix_adaptive_controller_degrades_instead_of_aborting() {
    let (trained, _) = trained_pso();
    // A higher rate than the training matrix: the adaptive session runs
    // far fewer evaluations, so the plan needs more chances to fire.
    for (class, scenario) in ChaosScenario::matrix(0xADA97, 0.6) {
        let run = |threads: usize| {
            let engine = scenario.threads(threads).max_retries(1).engine();
            let outcome = run_adaptive(
                trained,
                &Pso::new(),
                &engine,
                &prod_input("PSO"),
                &AccuracySpec::new(10.0),
                &ControlOptions::default(),
            );
            let report = serde_json::to_string(&engine.robustness_report()).unwrap();
            (outcome, engine.robustness_report(), report)
        };
        let (outcome, report, report_bytes) = run(2);
        assert!(
            report.injected_faults > 0,
            "{}: the plan never fired on the adaptive session",
            class.label()
        );

        // Determinism survives the fault plan: thread count changes
        // neither the fault ledger nor the controller's decisions.
        let (outcome_single, _, report_single) = run(1);
        assert_eq!(
            report_bytes,
            report_single,
            "{}: thread count leaked into the fault ledger",
            class.label()
        );
        assert_eq!(
            outcome.is_ok(),
            outcome_single.is_ok(),
            "{}: adaptive verdict diverged across thread counts",
            class.label()
        );

        let outcome = match outcome {
            Ok(outcome) => outcome,
            // A typed error is acceptable degradation; reaching here
            // without a panic is the point.
            Err(e) => {
                assert!(!e.to_string().is_empty());
                continue;
            }
        };
        let single = outcome_single.unwrap();
        assert_eq!(
            serde_json::to_string(&outcome.plan.phases).unwrap(),
            serde_json::to_string(&single.plan.phases).unwrap(),
            "{}: delivered plan diverged across thread counts",
            class.label()
        );

        // QoS holds even when phases fell back to accurate under faults.
        assert!(
            outcome.plan.predicted_qos <= 10.0 + 1e-9,
            "{}: re-planned QoS {} exceeds budget",
            class.label(),
            outcome.plan.predicted_qos
        );
        // The X009 conservation fact holds under every fault class: the
        // budget reclaimed from quarantined or degraded phases is
        // redistributed, bit for bit.
        let reclaimed: f64 = outcome.steps.iter().map(|s| s.budget_reclaimed).sum();
        let redistributed: f64 = outcome.steps.iter().map(|s| s.budget_redistributed).sum();
        assert!(
            (reclaimed - redistributed).abs() <= 1e-9 * reclaimed.abs().max(1.0),
            "{}: ledger leaks budget: reclaimed {reclaimed} vs redistributed {redistributed}",
            class.label()
        );
        assert_eq!(
            outcome.steps.len(),
            trained.num_phases(),
            "{}: the walk visits every phase exactly once",
            class.label()
        );
    }
}

/// The determinism acceptance gate: one seed, three fresh engines — two
/// single-threaded, one with four workers — produce byte-identical
/// serialized robustness reports for the same training run, and agree on
/// whether training succeeded.
#[test]
fn same_seed_yields_identical_reports_across_runs_and_thread_counts() {
    let base = ChaosScenario::seeded(0xD37)
        .inject(FaultClass::Panic, 0.15)
        .inject(FaultClass::NonFiniteQos, 0.10)
        .inject(FaultClass::PoisonedCache, 0.10)
        .max_retries(2);
    let mut reports = Vec::new();
    let mut outcomes = Vec::new();
    for threads in [1, 1, 4] {
        let engine = base.threads(threads).engine();
        let app = Pso::new();
        let trained = Opprox::train_with(&engine, &app, &fast_training_options(2));
        outcomes.push(trained.is_ok());
        let report = engine.robustness_report();
        assert!(report.injected_faults > 0, "scenario must actually inject");
        reports.push(serde_json::to_string(&report).expect("report serializes"));
    }
    assert_eq!(reports[0], reports[1], "rerun with the same seed diverged");
    assert_eq!(
        reports[0], reports[2],
        "thread count leaked into the report"
    );
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0], outcomes[2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The cache-hygiene property (rule C005, here at the integration
    /// level): a key whose last attempt failed is never served from the
    /// cache — resubmission is refused via quarantine, not answered —
    /// while a failure *within* the retry budget recovers to the exact
    /// result a clean engine produces, bit for bit.
    #[test]
    fn cache_never_serves_a_key_whose_last_attempt_failed(seed in 0u64..500) {
        let app = Pso::new();
        let input = prod_input("PSO");
        let schedule = PhaseSchedule::accurate(3);

        // Every attempt fails: no result may ever materialize.
        let failing = ChaosScenario::seeded(seed)
            .fail_first_attempts(u32::MAX)
            .max_retries(1)
            .engine();
        prop_assert!(failing.run(&app, &input, &schedule).is_err());
        prop_assert!(
            failing.run(&app, &input, &schedule).is_err(),
            "resubmission of a failed key must be refused, not served"
        );
        prop_assert_eq!(failing.cached_results(), 0, "failed evaluations cached");
        let report = failing.robustness_report();
        prop_assert_eq!(report.failed_evaluations, 1);
        prop_assert!(report.quarantine_hits >= 1);

        // Failures inside the retry budget converge to the clean result.
        let flaky = ChaosScenario::seeded(seed)
            .fail_first_attempts(1)
            .max_retries(2)
            .engine();
        let recovered = flaky.run(&app, &input, &schedule).expect("retry recovers");
        let clean = EvalEngine::new(1)
            .run(&app, &input, &schedule)
            .expect("clean run");
        prop_assert_eq!(
            serde_json::to_string(&*recovered).unwrap(),
            serde_json::to_string(&*clean).unwrap(),
            "recovered result must be bit-identical to the clean one"
        );
        prop_assert_eq!(flaky.cached_results(), 1, "recovered results are cacheable");
        prop_assert!(flaky.robustness_report().retries >= 1);
    }

    /// Byte-identical robustness reports for arbitrary seeds and thread
    /// counts over the resilient batch path.
    #[test]
    fn batch_reports_are_byte_identical_across_thread_counts(
        seed in 0u64..200,
        threads in 2usize..5,
    ) {
        let scenario = ChaosScenario::seeded(seed)
            .inject(FaultClass::Timeout, 0.4)
            .max_retries(1);
        let run = |threads: usize| {
            let engine = scenario.threads(threads).engine();
            let app = Pso::new();
            let jobs: Vec<(InputParams, PhaseSchedule)> = (0..6)
                .map(|i| {
                    (
                        InputParams::new(vec![8.0 + i as f64, 2.0]),
                        PhaseSchedule::accurate(3),
                    )
                })
                .collect();
            let outcomes = engine.run_batch_resilient(&app, &jobs);
            let shape: Vec<bool> = outcomes.iter().map(Result::is_ok).collect();
            let report = serde_json::to_string(&engine.robustness_report()).unwrap();
            (shape, report)
        };
        let (shape_seq, report_seq) = run(1);
        let (shape_par, report_par) = run(threads);
        prop_assert_eq!(shape_seq, shape_par, "success/failure schedule diverged");
        prop_assert_eq!(report_seq, report_par, "robustness report diverged");
    }
}
