//! Integration tests for model persistence: the paper stores trained
//! models on disk (Python pickles) and loads them at job-submission
//! time; our equivalent is JSON via serde.

use opprox::approx_rt::{InputParams, LevelConfig, PhaseSchedule};
use opprox::core::pipeline::{Opprox, TrainedOpprox, TrainingOptions};
use opprox::core::request::OptimizeRequest;
use opprox::core::sampling::SamplingPlan;
use opprox::core::AccuracySpec;
use opprox_apps::Pso;

fn trained() -> TrainedOpprox {
    let app = Pso::new();
    let opts = TrainingOptions {
        num_phases: Some(2),
        sampling: SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 0x5ED0,
        },
        ..TrainingOptions::default()
    };
    Opprox::train(&app, &opts).expect("training")
}

#[test]
fn trained_system_round_trips_through_json() {
    let system = trained();
    let json = system.to_json().expect("serialize");
    let restored = TrainedOpprox::from_json(&json).expect("deserialize");
    assert_eq!(system.app_name(), restored.app_name());
    assert_eq!(system.num_phases(), restored.num_phases());
    // Decisions must be identical after the round trip.
    let input = InputParams::new(vec![20.0, 3.0]);
    for budget in [5.0, 15.0, 40.0] {
        let a = OptimizeRequest::new(input.clone(), AccuracySpec::new(budget))
            .run(&system)
            .unwrap();
        let b = OptimizeRequest::new(input.clone(), AccuracySpec::new(budget))
            .run(&restored)
            .unwrap();
        assert_eq!(a.plan.schedule, b.plan.schedule, "budget {budget}");
    }
}

#[test]
fn schedules_round_trip_through_json() {
    let schedule = PhaseSchedule::new(
        vec![
            LevelConfig::new(vec![0, 1, 2]),
            LevelConfig::new(vec![3, 0, 1]),
        ],
        120,
    )
    .unwrap();
    let json = serde_json::to_string(&schedule).unwrap();
    let back: PhaseSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(schedule, back);
}

#[test]
fn corrupt_json_is_rejected_gracefully() {
    assert!(TrainedOpprox::from_json("").is_err());
    assert!(TrainedOpprox::from_json("{\"app_name\": 3}").is_err());
}
