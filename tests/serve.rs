//! Server-level integration tests: deterministic hot reload and
//! dispatch driven in-process with a [`ManualClock`], plus a real TCP
//! server answering concurrent clients.

use opprox::core::api::{
    AdaptiveParams, ApiRequest, ApiResponse, OptimizeParams, PredictParams, WireCode,
};
use opprox::core::pool::WorkPool;
use opprox::core::telemetry::Clock;
use opprox::core::{ManualClock, ServeOptions, ServeState, Server, Submission};
use opprox_testutil::serve::{send_lines, write_pso_artifact, write_streamagg_artifact};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::sync::Arc;

fn temp_artifact(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("opprox_serve_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    write_pso_artifact(&path);
    path
}

fn optimize_req() -> ApiRequest {
    ApiRequest::Optimize(OptimizeParams::new("pso", vec![16.0, 3.0], 10.0))
}

/// A reload swaps the model map atomically: a request that started
/// before the swap finishes against the snapshot it took, while new
/// requests see the new generation. Nothing is dropped either way.
#[test]
fn hot_reload_swaps_without_dropping_in_flight_requests() {
    let clock = Arc::new(ManualClock::new());
    let state = ServeState::with_clock(
        ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    let path = temp_artifact("hot_reload.json");
    let app = state.load_artifact(&path).expect("load artifact");
    assert_eq!(app, "pso");
    assert_eq!(state.generation(), 1);

    // An "in-flight" request pins the pre-reload snapshot.
    let in_flight = state.snapshot();

    // Touch the artifact: vendored JSON parsing tolerates trailing
    // whitespace, so appending a newline changes the (mtime, len) file
    // id without corrupting the file.
    let mut file = OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open artifact");
    file.write_all(b"\n").expect("touch artifact");
    drop(file);

    assert_eq!(state.poll_reload(), 1);
    assert_eq!(state.generation(), 2);
    assert_eq!(state.telemetry().counter_value("serve.reload"), 1);

    // The in-flight request still completes against generation 1...
    let ApiResponse::Optimize(old) = state.handle_with_models(&in_flight, &optimize_req()) else {
        panic!("expected an optimize reply from the old snapshot");
    };
    assert_eq!(old.generation, 1);

    // ...while a fresh request sees generation 2, with the same plan.
    let ApiResponse::Optimize(new) = state.handle(&optimize_req()) else {
        panic!("expected an optimize reply from the new snapshot");
    };
    assert_eq!(new.generation, 2);
    assert_eq!(new.levels, old.levels);

    // A second poll with an unchanged file is a no-op.
    assert_eq!(state.poll_reload(), 0);
    assert_eq!(state.generation(), 2);
}

/// A corrupt artifact on disk never takes down the server: the reload
/// is counted as an error and the previous artifact keeps serving.
#[test]
fn failed_reload_keeps_the_old_artifact() {
    let state = ServeState::new(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    });
    let path = temp_artifact("failed_reload.json");
    state.load_artifact(&path).expect("load artifact");

    std::fs::write(&path, "{ this is not an artifact").expect("corrupt artifact");
    assert_eq!(state.poll_reload(), 0);
    assert_eq!(state.telemetry().counter_value("serve.reload.error"), 1);
    assert_eq!(state.generation(), 1);

    let ApiResponse::Optimize(reply) = state.handle(&optimize_req()) else {
        panic!("expected the old artifact to keep serving");
    };
    assert_eq!(reply.generation, 1);
}

/// Uptime is read from the injected clock, so health frames are exactly
/// reproducible.
#[test]
fn health_uptime_follows_the_manual_clock() {
    let clock = Arc::new(ManualClock::new());
    let state = ServeState::with_clock(
        ServeOptions {
            threads: 3,
            queue_limit: 11,
            ..ServeOptions::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );
    let path = temp_artifact("uptime.json");
    state.load_artifact(&path).expect("load artifact");

    clock.set_micros(1_234_567);
    let ApiResponse::Health(health) = state.handle(&ApiRequest::Health) else {
        panic!("expected a health reply");
    };
    assert_eq!(health.uptime_micros, 1_234_567);
    assert_eq!(health.apps, vec!["pso".to_string()]);
    assert_eq!(health.threads, 3);
    assert_eq!(health.queue_limit, 11);
    assert_eq!(health.queue_depth, 0);
}

/// Driving the queue by hand: submissions beyond the bound shed, one
/// `drain_once` answers a full batch on the pool, and the dispatcher
/// records the shed in a `serve.admission` ledger event.
#[test]
fn drain_once_answers_queued_requests_and_logs_admission() {
    let state = ServeState::new(ServeOptions {
        threads: 2,
        queue_limit: 2,
        batch_max: 8,
        ..ServeOptions::default()
    });
    let path = temp_artifact("drain.json");
    state.load_artifact(&path).expect("load artifact");

    let rx1 = match state.submit(optimize_req()) {
        Submission::Queued(rx) => rx,
        Submission::Shed(_) => panic!("first submission must be admitted"),
    };
    let rx2 = match state.submit(ApiRequest::Predict(PredictParams {
        app: "pso".to_string(),
        input: vec![16.0, 3.0],
        phase: 0,
        configs: vec![vec![1, 1, 1]],
    })) {
        Submission::Queued(rx) => rx,
        Submission::Shed(_) => panic!("second submission must be admitted"),
    };
    let Submission::Shed(shed) = state.submit(optimize_req()) else {
        panic!("third submission must shed");
    };
    assert!(shed.is_error());

    let pool = WorkPool::new(2);
    let mut last_shed = 0u64;
    assert_eq!(state.drain_once(&pool, &mut last_shed), 2);
    assert!(matches!(
        rx1.recv().expect("reply for job 1"),
        ApiResponse::Optimize(_)
    ));
    assert!(matches!(
        rx2.recv().expect("reply for job 2"),
        ApiResponse::Predict(_)
    ));

    let report = state.telemetry().report();
    let events = report.events_named("serve.admission");
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].field("shed"), Some(1.0));
    assert_eq!(events[0].field("queue_limit"), Some(2.0));
    assert_eq!(state.telemetry().counter_value("serve.shed"), 1);
    assert_eq!(state.telemetry().counter_value("serve.admitted"), 2);
}

/// A real TCP server answering several concurrent connections, then
/// shutting down cleanly on a wire `shutdown` frame.
#[test]
fn tcp_server_answers_concurrent_clients() {
    let state = Arc::new(ServeState::new(ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    }));
    let path = temp_artifact("tcp.json");
    state.load_artifact(&path).expect("load artifact");
    let mut server = Server::start(Arc::clone(&state)).expect("start server");
    let addr = server.addr().to_string();

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let optimize = optimize_req().to_wire();
                let predict = ApiRequest::Predict(PredictParams {
                    app: "PSO".to_string(),
                    input: vec![16.0, 3.0 + i as f64],
                    phase: 1,
                    configs: vec![vec![0, 0, 0], vec![2, 2, 2]],
                })
                .to_wire();
                let health = ApiRequest::Health.to_wire();
                send_lines(&addr, &[&health, &predict, &optimize])
            })
        })
        .collect();
    for client in clients {
        let replies = client.join().expect("client thread");
        assert_eq!(replies.len(), 3);
        assert!(matches!(
            ApiResponse::parse(&replies[0]).expect("health frame"),
            ApiResponse::Health(_)
        ));
        let ApiResponse::Predict(pred) = ApiResponse::parse(&replies[1]).expect("predict frame")
        else {
            panic!("expected a predict reply, got {}", replies[1]);
        };
        assert_eq!(pred.predictions.len(), 2);
        assert!(matches!(
            ApiResponse::parse(&replies[2]).expect("optimize frame"),
            ApiResponse::Optimize(_)
        ));
    }

    let replies = send_lines(&addr, &[&ApiRequest::Shutdown.to_wire()]);
    assert_eq!(
        ApiResponse::parse(&replies[0]).expect("shutdown frame"),
        ApiResponse::Shutdown
    );
    server.stop();
    assert!(state.is_shutdown());
    assert!(state.telemetry().counter_value("serve.requests") >= 13);
}

/// Heterogeneous traffic against a multi-app store: one server holds
/// trained artifacts for two applications with different block counts
/// and input arities, concurrent clients interleave requests across
/// them on the same connections, and every reply routes to the right
/// model (PSO replies have 3-level plans, StreamAgg replies 3-block
/// predictions of their own). An unknown app is refused with a frame
/// listing both loaded names.
#[test]
fn tcp_server_routes_mixed_app_traffic() {
    let state = Arc::new(ServeState::new(ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    }));
    let pso_path = temp_artifact("mixed_pso.json");
    state.load_artifact(&pso_path).expect("load PSO artifact");
    let agg_path = std::env::temp_dir()
        .join("opprox_serve_tests")
        .join("mixed_streamagg.json");
    write_streamagg_artifact(&agg_path);
    let loaded = state
        .load_artifact(&agg_path)
        .expect("load StreamAgg artifact");
    assert_eq!(loaded, "streamagg");

    let ApiResponse::Health(health) = state.handle(&ApiRequest::Health) else {
        panic!("expected a health reply");
    };
    assert_eq!(
        health.apps,
        vec!["pso".to_string(), "streamagg".to_string()]
    );

    let mut server = Server::start(Arc::clone(&state)).expect("start server");
    let addr = server.addr().to_string();

    let clients: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let pso_opt = ApiRequest::Optimize(OptimizeParams::new(
                    "pso",
                    vec![16.0, 3.0 + i as f64],
                    10.0,
                ))
                .to_wire();
                let agg_opt =
                    ApiRequest::Optimize(OptimizeParams::new("StreamAgg", vec![64.0, 40.0], 10.0))
                        .to_wire();
                let agg_pred = ApiRequest::Predict(PredictParams {
                    app: "streamagg".to_string(),
                    input: vec![64.0, 40.0],
                    phase: 0,
                    configs: vec![vec![0, 0, 0], vec![2, 1, 3]],
                })
                .to_wire();
                send_lines(&addr, &[&pso_opt, &agg_opt, &agg_pred])
            })
        })
        .collect();
    for client in clients {
        let replies = client.join().expect("client thread");
        assert_eq!(replies.len(), 3);
        let ApiResponse::Optimize(pso) = ApiResponse::parse(&replies[0]).expect("pso frame") else {
            panic!("expected a PSO optimize reply, got {}", replies[0]);
        };
        assert_eq!(pso.app, "pso");
        let ApiResponse::Optimize(agg) = ApiResponse::parse(&replies[1]).expect("agg frame") else {
            panic!("expected a StreamAgg optimize reply, got {}", replies[1]);
        };
        // The reply echoes the client's spelling; routing is
        // case-insensitive against the lowercased store key.
        assert!(agg.app.eq_ignore_ascii_case("streamagg"), "{}", agg.app);
        assert!(
            agg.levels.iter().all(|cfg| cfg.len() == 3),
            "StreamAgg plans must cover its 3 blocks: {:?}",
            agg.levels
        );
        let ApiResponse::Predict(pred) = ApiResponse::parse(&replies[2]).expect("predict frame")
        else {
            panic!("expected a predict reply, got {}", replies[2]);
        };
        assert_eq!(pred.predictions.len(), 2);
    }

    // An app the store does not hold is refused, naming what is loaded.
    let missing =
        ApiRequest::Optimize(OptimizeParams::new("lulesh", vec![48.0, 2.0], 10.0)).to_wire();
    let replies = send_lines(&addr, &[&missing]);
    let ApiResponse::Error { code, message } =
        ApiResponse::parse(&replies[0]).expect("error frame")
    else {
        panic!("expected an error frame, got {}", replies[0]);
    };
    assert_eq!(code, WireCode::UnknownApp);
    assert!(
        message.contains("pso") && message.contains("streamagg"),
        "{message}"
    );

    let replies = send_lines(&addr, &[&ApiRequest::Shutdown.to_wire()]);
    assert_eq!(
        ApiResponse::parse(&replies[0]).expect("shutdown frame"),
        ApiResponse::Shutdown
    );
    server.stop();
}

/// The `adaptive` op end-to-end on the wire: a drift-injected
/// closed-loop session round-trips over TCP with a balanced budget
/// ledger, and an unknown op under protocol v1 is refused with a
/// `bad_request` frame instead of tearing down the connection.
#[test]
fn tcp_adaptive_op_round_trips_and_unknown_op_is_refused() {
    let state = Arc::new(ServeState::new(ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    }));
    let path = temp_artifact("adaptive.json");
    state.load_artifact(&path).expect("load artifact");
    let mut server = Server::start(Arc::clone(&state)).expect("start server");
    let addr = server.addr().to_string();

    let mut params = AdaptiveParams::new("pso", vec![16.0, 3.0], 10.0);
    params.drift_phase = Some(0);
    params.drift_factor = Some(6.0);
    let adaptive = ApiRequest::Adaptive(params).to_wire();
    // A frame with a valid envelope but an op v1 does not know.
    let unknown = r#"{"v":1,"kind":"resegment"}"#;
    let replies = send_lines(&addr, &[&adaptive, unknown]);
    assert_eq!(replies.len(), 2);

    let ApiResponse::Adaptive(reply) = ApiResponse::parse(&replies[0]).expect("adaptive frame")
    else {
        panic!("expected an adaptive reply, got {}", replies[0]);
    };
    assert_eq!(reply.app, "pso");
    assert!(reply.steps > 0, "the controller walked no phases");
    assert!(reply.replans >= 1, "a 6x drift injection must re-plan");
    assert!(
        (reply.budget_reclaimed - reply.budget_redistributed).abs() <= 1e-9,
        "ledger leaks budget on the wire: reclaimed {} vs redistributed {}",
        reply.budget_reclaimed,
        reply.budget_redistributed
    );
    assert!(
        reply.predicted_qos <= 10.0 + 1e-9,
        "re-planned QoS {} exceeds the requested budget",
        reply.predicted_qos
    );
    assert!(reply.measured.is_some(), "adaptive sessions always execute");

    let err = ApiResponse::parse(&replies[1]).expect("error frames parse");
    let ApiResponse::Error { code, message } = err else {
        panic!("expected an error frame, got {}", replies[1]);
    };
    assert_eq!(code, WireCode::BadRequest);
    assert!(message.contains("unknown request kind"), "{message}");

    let replies = send_lines(&addr, &[&ApiRequest::Shutdown.to_wire()]);
    assert_eq!(
        ApiResponse::parse(&replies[0]).expect("shutdown frame"),
        ApiResponse::Shutdown
    );
    server.stop();
}
