//! Cross-crate tests for the shared evaluation engine: parallel
//! determinism of training data and execution-cache reuse across
//! pipeline entry points.

use opprox::approx_rt::InputParams;
use opprox::core::evaluator::EvalEngine;
use opprox::core::oracle::phase_agnostic_oracle_with;
use opprox::core::sampling::{collect_training_data_with, SamplingPlan};
use opprox::core::AccuracySpec;
use opprox_apps::Pso;
use opprox_testutil::fixtures::prod_input;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Training data collected on the parallel engine is bit-identical
    /// to a single-thread collection, for any thread count and sampling
    /// seed: results are assembled in submission order, so worker
    /// scheduling never leaks into the profile.
    #[test]
    fn parallel_training_data_is_bit_identical_to_sequential(
        threads in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let app = Pso::new();
        let inputs = vec![InputParams::new(vec![12.0, 3.0]), prod_input("PSO")];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 6,
            whole_run_samples: 2,
            seed,
        };
        let sequential =
            collect_training_data_with(&EvalEngine::new(1), &app, &inputs, &plan).unwrap();
        let parallel =
            collect_training_data_with(&EvalEngine::new(threads), &app, &inputs, &plan).unwrap();
        // Compare the serialized form: float bits, record order, and
        // control-flow signatures must all match exactly — not just
        // approximately equal measurements.
        prop_assert_eq!(
            serde_json::to_string(&sequential).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }
}

/// Re-running the oracle at a different budget on the same engine costs
/// zero new executions: the sweep's configuration space is already in
/// the execution cache, only the winner filter changes.
#[test]
fn shared_engine_makes_repeat_oracle_sweeps_free() {
    let app = Pso::new();
    let input = prod_input("PSO");
    let engine = EvalEngine::default();

    let tight = phase_agnostic_oracle_with(&engine, &app, &input, &AccuracySpec::new(2.0))
        .expect("tight-budget oracle");
    let after_first = engine.metrics();
    assert!(after_first.executions > 0);

    let loose = phase_agnostic_oracle_with(&engine, &app, &input, &AccuracySpec::new(20.0))
        .expect("loose-budget oracle");
    let after_second = engine.metrics();

    assert_eq!(
        after_second.executions, after_first.executions,
        "second sweep re-executed configurations instead of hitting the cache"
    );
    assert!(
        after_second.cache_hits > after_first.cache_hits,
        "second sweep reported no cache hits"
    );
    // A looser budget admits every plan the tight one did.
    assert!(loose.speedup >= tight.speedup);
}

/// A cold engine pays for the full sweep; the execution count a fresh
/// engine reports for the same budget matches what the shared engine
/// paid only once.
#[test]
fn fresh_engine_repays_the_full_sweep() {
    let app = Pso::new();
    let input = prod_input("PSO");
    let spec = AccuracySpec::new(20.0);

    let shared = EvalEngine::default();
    phase_agnostic_oracle_with(&shared, &app, &input, &AccuracySpec::new(2.0)).expect("warm-up");
    let warm_before = shared.metrics().executions;
    phase_agnostic_oracle_with(&shared, &app, &input, &spec).expect("warm oracle");
    let warm_cost = shared.metrics().executions - warm_before;

    let cold = EvalEngine::default();
    phase_agnostic_oracle_with(&cold, &app, &input, &spec).expect("cold oracle");
    let cold_cost = cold.metrics().executions;

    assert_eq!(
        warm_cost, 0,
        "warm engine should serve the sweep from cache"
    );
    assert!(cold_cost > 0, "cold engine must actually execute the sweep");
}
