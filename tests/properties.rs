//! Cross-crate property tests on the runtime/optimizer invariants.

use opprox::approx_rt::config::{config_space_size, enumerate_configs, sample_configs};
use opprox::approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use opprox_apps::Pso;
use opprox_testutil::fixtures::{blocks_with_levels, pso_blocks};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every iteration belongs to exactly one phase and phases are
    /// contiguous and non-decreasing.
    #[test]
    fn phase_assignment_is_monotone_partition(
        num_phases in 1usize..8,
        expected in 1u64..500,
    ) {
        let configs = vec![LevelConfig::accurate(2); num_phases];
        let s = PhaseSchedule::new(configs, expected).unwrap();
        let mut prev = 0usize;
        for it in 0..expected {
            let ph = s.phase_of(it);
            prop_assert!(ph < num_phases);
            prop_assert!(ph >= prev, "phase regressed at iteration {it}");
            prop_assert!(ph <= prev + 1, "phase skipped at iteration {it}");
            prev = ph;
        }
        // Iterations beyond the expected end stay in the final phase.
        prop_assert_eq!(s.phase_of(expected * 3 + 1), num_phases - 1);
    }

    /// The enumerated configuration space has exactly the advertised size
    /// and contains no duplicates.
    #[test]
    fn config_enumeration_matches_size(levels in proptest::collection::vec(0u8..4, 1..4)) {
        let blocks = blocks_with_levels(&levels);
        let all = enumerate_configs(&blocks);
        prop_assert_eq!(all.len() as u64, config_space_size(&blocks));
        let set: std::collections::HashSet<_> = all.iter().collect();
        prop_assert_eq!(set.len(), all.len());
    }

    /// Sampled configurations are always valid and never accurate.
    #[test]
    fn sampled_configs_are_valid(seed in 0u64..1000, count in 1usize..12) {
        let blocks = pso_blocks();
        for c in sample_configs(&blocks, count, seed) {
            prop_assert!(c.validate(&blocks).is_ok());
            prop_assert!(!c.is_accurate());
        }
    }

    /// PSO is a pure function of (input, schedule): work, iterations and
    /// output never vary between repeated runs.
    #[test]
    fn pso_runs_are_reproducible(swarm in 8u32..24, dim in 2u32..5, seed in 0u64..50) {
        let app = Pso::new();
        let input = InputParams::new(vec![swarm as f64, dim as f64]);
        let cfg = sample_configs(&app.meta().blocks, 1, seed).remove(0);
        let schedule = PhaseSchedule::constant(cfg);
        let a = app.run(&input, &schedule).unwrap();
        let b = app.run(&input, &schedule).unwrap();
        prop_assert_eq!(a.work, b.work);
        prop_assert_eq!(a.outer_iters, b.outer_iters);
        prop_assert_eq!(a.output, b.output);
    }

    /// QoS degradation of a run against itself is always zero, and
    /// speedup against itself is exactly 1.
    #[test]
    fn self_comparison_is_neutral(swarm in 8u32..20, dim in 2u32..4) {
        let app = Pso::new();
        let input = InputParams::new(vec![swarm as f64, dim as f64]);
        let g = app.golden(&input).unwrap();
        prop_assert_eq!(app.qos_degradation(&g, &g), 0.0);
        prop_assert_eq!(g.speedup_over(&g), 1.0);
    }
}
