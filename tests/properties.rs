//! Cross-crate property tests on the runtime/optimizer invariants.

use opprox::approx_rt::config::{config_space_size, enumerate_configs, sample_configs};
use opprox::approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use opprox::core::modeling::{AppModels, ModelingOptions};
use opprox::core::optimizer::{exhaustive_phase_oracle, optimize_phase, Conservatism};
use opprox::core::sampling::{collect_training_data, SamplingPlan};
use opprox_apps::Pso;
use opprox_testutil::fixtures::{blocks_with_levels, pso_blocks};
use proptest::prelude::*;
use std::sync::OnceLock;

/// PSO models fitted once and shared across property cases (fitting is
/// far more expensive than the searches under test).
fn pso_models() -> &'static AppModels {
    static MODELS: OnceLock<AppModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 5,
        };
        let data = collect_training_data(&app, &inputs, &plan).unwrap();
        AppModels::fit(&data, 2, &ModelingOptions::default()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every iteration belongs to exactly one phase and phases are
    /// contiguous and non-decreasing.
    #[test]
    fn phase_assignment_is_monotone_partition(
        num_phases in 1usize..8,
        expected in 1u64..500,
    ) {
        let configs = vec![LevelConfig::accurate(2); num_phases];
        let s = PhaseSchedule::new(configs, expected).unwrap();
        let mut prev = 0usize;
        for it in 0..expected {
            let ph = s.phase_of(it);
            prop_assert!(ph < num_phases);
            prop_assert!(ph >= prev, "phase regressed at iteration {it}");
            prop_assert!(ph <= prev + 1, "phase skipped at iteration {it}");
            prev = ph;
        }
        // Iterations beyond the expected end stay in the final phase.
        prop_assert_eq!(s.phase_of(expected * 3 + 1), num_phases - 1);
    }

    /// The enumerated configuration space has exactly the advertised size
    /// and contains no duplicates.
    #[test]
    fn config_enumeration_matches_size(levels in proptest::collection::vec(0u8..4, 1..4)) {
        let blocks = blocks_with_levels(&levels);
        let all: Vec<_> = enumerate_configs(&blocks).collect();
        prop_assert_eq!(all.len() as u64, config_space_size(&blocks));
        let set: std::collections::HashSet<_> = all.iter().collect();
        prop_assert_eq!(set.len(), all.len());
    }

    /// Sampled configurations are always valid and never accurate.
    #[test]
    fn sampled_configs_are_valid(seed in 0u64..1000, count in 1usize..12) {
        let blocks = pso_blocks();
        for c in sample_configs(&blocks, count, seed) {
            prop_assert!(c.validate(&blocks).is_ok());
            prop_assert!(!c.is_accurate());
        }
    }

    /// PSO is a pure function of (input, schedule): work, iterations and
    /// output never vary between repeated runs.
    #[test]
    fn pso_runs_are_reproducible(swarm in 8u32..24, dim in 2u32..5, seed in 0u64..50) {
        let app = Pso::new();
        let input = InputParams::new(vec![swarm as f64, dim as f64]);
        let cfg = sample_configs(&app.meta().blocks, 1, seed).remove(0);
        let schedule = PhaseSchedule::constant(cfg);
        let a = app.run(&input, &schedule).unwrap();
        let b = app.run(&input, &schedule).unwrap();
        prop_assert_eq!(a.work, b.work);
        prop_assert_eq!(a.outer_iters, b.outer_iters);
        prop_assert_eq!(a.output, b.output);
    }

    /// QoS degradation of a run against itself is always zero, and
    /// speedup against itself is exactly 1.
    #[test]
    fn self_comparison_is_neutral(swarm in 8u32..20, dim in 2u32..4) {
        let app = Pso::new();
        let input = InputParams::new(vec![swarm as f64, dim as f64]);
        let g = app.golden(&input).unwrap();
        prop_assert_eq!(app.qos_degradation(&g, &g), 0.0);
        prop_assert_eq!(g.speedup_over(&g), 1.0);
    }

    /// The bound-pruned per-phase search returns the *bitwise identical*
    /// plan to the exhaustive oracle, in both conservatism modes, across
    /// randomized sub-spaces of the trained block space, and its node
    /// accounting always balances (`visited == expanded + pruned`).
    #[test]
    fn pruned_phase_search_matches_exhaustive_oracle(
        maxes in proptest::collection::vec(1u8..6, 3),
        budget in 0.0f64..40.0,
        phase in 0usize..2,
        band in 0u8..2,
        swarm in 12u32..28,
    ) {
        let models = pso_models();
        let mut blocks = pso_blocks();
        for (b, &m) in blocks.iter_mut().zip(&maxes) {
            b.max_level = m;
        }
        prop_assert!(config_space_size(&blocks) <= opprox::core::optimizer::EXHAUSTIVE_LIMIT);
        let input = InputParams::new(vec![swarm as f64, 3.0]);
        let cons = if band == 1 { Conservatism::Band } else { Conservatism::Point };
        let (pruned, stats) =
            optimize_phase(models, &blocks, &input, phase, budget, cons).unwrap();
        let oracle =
            exhaustive_phase_oracle(models, &blocks, &input, phase, budget, cons).unwrap();
        prop_assert_eq!(pruned, oracle);
        prop_assert_eq!(stats.visited, stats.expanded + stats.pruned);
        prop_assert!(stats.evaluated < config_space_size(&blocks));
    }
}

/// The validated optimizer's outcome must not depend on how many worker
/// threads the evaluation engine runs: the pruned search is sequential
/// and the engine's batch results are order-stable, so one thread and
/// eight must produce byte-identical schedules.
#[test]
fn schedule_is_identical_across_engine_thread_counts() {
    use opprox::core::evaluator::EvalEngine;
    use opprox::core::pipeline::{Opprox, TrainingOptions};
    use opprox::core::request::OptimizeRequest;
    use opprox::core::AccuracySpec;

    let app = Pso::new();
    let opts = TrainingOptions {
        num_phases: Some(2),
        sampling: SamplingPlan {
            num_phases: 2,
            sparse_samples: 8,
            whole_run_samples: 0,
            seed: 7,
        },
        ..TrainingOptions::default()
    };
    let trained = Opprox::train(&app, &opts).unwrap();
    let input = InputParams::new(vec![16.0, 3.0]);

    let schedule_with = |threads: usize| {
        let engine = EvalEngine::new(threads);
        let outcome = OptimizeRequest::new(input.clone(), AccuracySpec::new(12.0))
            .validate_on(&app)
            .engine(&engine)
            .run(&trained)
            .unwrap();
        serde_json::to_string(&outcome.plan.schedule).unwrap()
    };

    let single = schedule_with(1);
    let eight = schedule_with(8);
    assert_eq!(single, eight, "schedule artifact varies with thread count");
}
