//! End-to-end integration tests: train → optimize → evaluate across the
//! full application suite, with small training plans so the suite stays
//! fast.

use opprox::approx_rt::InputParams;
use opprox::core::evaluator::EvalEngine;
use opprox::core::pipeline::Opprox;
use opprox::core::request::OptimizeRequest;
use opprox::core::AccuracySpec;
use opprox_apps::registry::all_apps;
use opprox_testutil::fixtures::{fast_training_options as fast_options, prod_input};

#[test]
fn validated_optimization_respects_budget_for_every_app() {
    for app in all_apps() {
        let name = app.meta().name.clone();
        let trained = Opprox::train(app.as_ref(), &fast_options(2))
            .unwrap_or_else(|e| panic!("{name}: training failed: {e}"));
        let input = prod_input(&name);
        let budget = if name == "FFmpeg" { 40.0 } else { 15.0 };
        let spec = AccuracySpec::new(budget);
        let result = OptimizeRequest::new(input, spec)
            .validate_on(app.as_ref())
            .run(&trained)
            .unwrap_or_else(|e| panic!("{name}: optimization failed: {e}"));
        let outcome = result.measured.expect("validated requests measure");
        assert!(
            outcome.qos <= budget,
            "{name}: measured QoS {} exceeds budget {budget}",
            outcome.qos
        );
        assert!(outcome.speedup >= 1.0, "{name}: plan slowed the app down");
        assert_eq!(
            result.plan.schedule.num_phases(),
            2,
            "{name}: wrong phase count"
        );
    }
}

#[test]
fn zero_budget_always_yields_accurate_execution() {
    let app = opprox_apps::Pso::new();
    let trained = Opprox::train(&app, &fast_options(2)).expect("training");
    let input = prod_input("PSO");
    let result = OptimizeRequest::new(input, AccuracySpec::new(0.0))
        .validate_on(&app)
        .run(&trained)
        .expect("optimization");
    let outcome = result.measured.expect("validated requests measure");
    assert!(result.plan.schedule.is_accurate());
    assert_eq!(
        result.path,
        opprox::core::request::OptimizePath::AccurateFallback
    );
    assert_eq!(outcome.speedup, 1.0);
    assert_eq!(outcome.qos, 0.0);
}

/// The suite long asserted speedups but never evaluation counts: a
/// cache regression that re-executed every repeated configuration would
/// have passed unnoticed. The telemetry counters close that gap.
#[test]
fn pipeline_reuses_the_cache_instead_of_reexecuting() {
    let app = opprox_apps::Pso::new();
    let engine = EvalEngine::new(2);
    let trained = Opprox::train_with(&engine, &app, &fast_options(2)).expect("training");
    OptimizeRequest::new(prod_input("PSO"), AccuracySpec::new(10.0))
        .validate_on(&app)
        .engine(&engine)
        .run(&trained)
        .expect("validated optimization");

    let report = engine.telemetry_report();
    let metrics = engine.metrics();
    // The counters agree with the engine's own ledger...
    assert_eq!(report.counter("eval.exec"), metrics.executions);
    assert_eq!(report.counter("eval.cache.hit"), metrics.cache_hits);
    // ...the self-check re-requests and validation replays actually hit...
    assert!(metrics.cache_hits > 0, "whole pipeline produced no hits");
    // ...and no configuration was ever executed twice: the sum of the
    // per-key counters accounts for every execution, each exactly once.
    let per_key = opprox_testutil::trace::per_key_counters(&report, "eval.exec[");
    assert_eq!(per_key.len() as u64, metrics.executions);
    for (key, count) in per_key {
        assert_eq!(count, 1, "{key} executed {count} times");
    }
}

#[test]
fn training_is_deterministic() {
    let app = opprox_apps::Pso::new();
    let input = prod_input("PSO");
    let spec = AccuracySpec::new(10.0);
    let a = OptimizeRequest::new(input.clone(), spec)
        .run(&Opprox::train(&app, &fast_options(2)).unwrap())
        .unwrap();
    let b = OptimizeRequest::new(input, spec)
        .run(&Opprox::train(&app, &fast_options(2)).unwrap())
        .unwrap();
    assert_eq!(a.plan.schedule, b.plan.schedule);
}

#[test]
fn four_phase_training_works_on_the_heavier_apps() {
    for name in ["LULESH", "CoMD"] {
        let app = opprox_apps::registry::by_name(name).expect("registered");
        let trained = Opprox::train(app.as_ref(), &fast_options(4)).expect("4-phase training");
        assert_eq!(trained.num_phases(), 4);
        let outcome = OptimizeRequest::new(prod_input(name), AccuracySpec::new(10.0))
            .run(&trained)
            .expect("optimize");
        assert_eq!(outcome.plan.schedule.num_phases(), 4);
    }
}

#[test]
fn golden_iteration_estimator_tracks_inputs() {
    let app = opprox_apps::CoMd::new();
    let trained = Opprox::train(&app, &fast_options(2)).expect("training");
    // CoMD's iteration count equals its timesteps parameter; the
    // estimator must follow it across inputs.
    let short = trained
        .estimate_golden_iters(&InputParams::new(vec![3.0, 1.2, 120.0]))
        .expect("estimate");
    let long = trained
        .estimate_golden_iters(&InputParams::new(vec![3.0, 1.2, 180.0]))
        .expect("estimate");
    assert!(long > short, "estimates: short {short}, long {long}");
}

#[test]
fn canary_validation_optimizes_for_production_but_validates_cheaply() {
    let app = opprox_apps::CoMd::new();
    let trained = Opprox::train(&app, &fast_options(2)).expect("training");
    // Production input: 180 timesteps; canary: 60 timesteps (same physics,
    // a third of the cost).
    let production = InputParams::new(vec![3.0, 1.2, 180.0]);
    let canary = InputParams::new(vec![3.0, 1.2, 60.0]);
    let budget = 15.0;
    let result = OptimizeRequest::new(production.clone(), AccuracySpec::new(budget))
        .validate_on(&app)
        .canary(canary)
        .run(&trained)
        .expect("canary optimization");
    let canary_outcome = result.measured.expect("validated requests measure");
    assert!(canary_outcome.qos <= budget);
    // The plan must still be runnable on the production input.
    let production_outcome = trained
        .evaluate(&app, &production, &result.plan)
        .expect("production evaluation");
    assert!(production_outcome.speedup > 0.0);
    assert!(production_outcome.qos.is_finite());
}
