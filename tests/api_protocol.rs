//! Property tests on the v1 wire protocol: every request/response frame
//! survives serialize→parse byte-identically, and malformed frames are
//! rejected with the right wire error code.

use opprox::core::api::{
    AdaptiveParams, AdaptiveReply, ApiRequest, ApiResponse, HealthReply, OptimizeParams,
    OptimizeReply, PredictParams, PredictReply, PredictionReply, WireCode, ALL_CODES, API_VERSION,
};
use opprox::core::OpproxError;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use proptest::test_runner::TestRng;

/// Uniform choice between boxed strategies (the vendored proptest
/// stand-in has no `prop_oneof!`).
struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

fn a_bool() -> impl Strategy<Value = bool> {
    (0u64..2).prop_map(|b| b == 1)
}

fn opt_u64(range: std::ops::Range<u64>) -> impl Strategy<Value = Option<u64>> {
    (0u64..2, range).prop_map(|(some, v)| (some == 1).then_some(v))
}

fn opt_finite_f64() -> impl Strategy<Value = Option<f64>> {
    (0u64..2, 0.0..100.0f64).prop_map(|(some, v)| (some == 1).then_some(v))
}

/// Finite inputs only: the wire renders non-finite floats as `null`, so
/// NaN/∞ cannot round-trip (the server rejects them as measurements via
/// `non_finite_measurement` instead).
fn finite_f64() -> impl Strategy<Value = f64> {
    OneOf(vec![
        (-1e9..1e9f64).boxed(),
        Just(0.0).boxed(),
        Just(16.0).boxed(),
        Just(0.015625).boxed(),
        Just(-3.5e-7).boxed(),
    ])
}

/// Printable strings drawn from an alphabet that exercises the JSON
/// string escaper; quotes and backslashes included deliberately.
fn app_name() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcpsoXYZ089_\\\" ./-";
    proptest::collection::vec(0usize..ALPHABET.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

fn levels() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..8, 0..4), 0..4)
}

fn optimize_params() -> impl Strategy<Value = OptimizeParams> {
    (
        app_name(),
        proptest::collection::vec(finite_f64(), 0..4),
        finite_f64(),
        (a_bool(), a_bool()),
        (opt_u64(0..1000), opt_u64(0..10)),
        (opt_u64(0..5000), opt_u64(0..5000)),
    )
        .prop_map(
            |(
                app,
                input,
                budget,
                (point, validate),
                (validations, retries),
                (backoff, timeout),
            )| {
                let mut p = OptimizeParams::new(app, input, budget);
                p.point = point;
                p.validate = validate;
                p.validation_budget = validations;
                p.max_retries = retries;
                p.backoff_ms = backoff;
                p.eval_timeout_ms = timeout;
                p
            },
        )
}

fn predict_params() -> impl Strategy<Value = PredictParams> {
    (
        app_name(),
        proptest::collection::vec(finite_f64(), 0..4),
        0u64..16,
        levels(),
    )
        .prop_map(|(app, input, phase, configs)| PredictParams {
            app,
            input,
            phase,
            configs,
        })
}

/// Adaptive frames generate only valid drift combinations — no
/// injection, phase+factor, or phase+factor+block — because `to_wire`
/// can never produce a half-specified one (the parser rejects those; see
/// `half_specified_drift_injection_is_rejected` in the unit suite).
fn adaptive_params() -> impl Strategy<Value = AdaptiveParams> {
    (
        (
            app_name(),
            proptest::collection::vec(finite_f64(), 0..4),
            finite_f64(),
        ),
        (opt_finite_f64(), a_bool()),
        ((0u64..3, 0u64..16), (finite_f64(), 0u64..8)),
        (opt_u64(0..10), opt_u64(0..5000), opt_u64(0..5000)),
    )
        .prop_map(
            |(
                (app, input, budget),
                (tolerance, resegment),
                ((mode, phase), (factor, block)),
                (retries, backoff, timeout),
            )| {
                let mut p = AdaptiveParams::new(app, input, budget);
                p.tolerance = tolerance;
                p.resegment = resegment;
                if mode > 0 {
                    p.drift_phase = Some(phase);
                    p.drift_factor = Some(factor);
                    if mode == 2 {
                        p.drift_block = Some(block);
                    }
                }
                p.max_retries = retries;
                p.backoff_ms = backoff;
                p.eval_timeout_ms = timeout;
                p
            },
        )
}

fn api_request() -> impl Strategy<Value = ApiRequest> {
    OneOf(vec![
        optimize_params().prop_map(ApiRequest::Optimize).boxed(),
        adaptive_params().prop_map(ApiRequest::Adaptive).boxed(),
        predict_params().prop_map(ApiRequest::Predict).boxed(),
        Just(ApiRequest::Health).boxed(),
        Just(ApiRequest::Metrics).boxed(),
        Just(ApiRequest::Shutdown).boxed(),
    ])
}

fn api_response() -> impl Strategy<Value = ApiResponse> {
    let optimize = (
        app_name(),
        0u64..100,
        levels(),
        (finite_f64(), finite_f64()),
        0u64..64,
        a_bool(),
    )
        .prop_map(|(app, generation, levels, (sp, qos), tried, cached)| {
            ApiResponse::Optimize(OptimizeReply {
                app,
                generation,
                path: "model_only".to_string(),
                levels,
                predicted_speedup: sp,
                predicted_qos: qos,
                candidates_tried: tried,
                cached,
                measured: None,
            })
        });
    let predict = (
        app_name(),
        0u64..100,
        0u64..8,
        proptest::collection::vec((finite_f64(), finite_f64(), finite_f64()), 0..4),
    )
        .prop_map(|(app, generation, class, rows)| {
            ApiResponse::Predict(PredictReply {
                app,
                generation,
                class,
                predictions: rows
                    .into_iter()
                    .map(|(speedup, qos, iters)| PredictionReply {
                        speedup,
                        qos,
                        iters,
                    })
                    .collect(),
            })
        });
    let health = (
        proptest::collection::vec(app_name(), 0..3),
        0u64..100,
        (0u64..64, 1u64..64),
        (1u64..32, 0u64..1_000_000),
    )
        .prop_map(|(apps, generation, (depth, limit), (threads, uptime))| {
            ApiResponse::Health(HealthReply {
                apps,
                generation,
                queue_depth: depth,
                queue_limit: limit,
                threads,
                uptime_micros: uptime,
            })
        });
    let adaptive = (
        (app_name(), 0u64..100, levels()),
        (finite_f64(), finite_f64()),
        (0u64..16, 0u64..16),
        (a_bool(), a_bool()),
        (finite_f64(), finite_f64()),
    )
        .prop_map(
            |(
                (app, generation, levels),
                (sp, qos),
                (steps, replans),
                (resegmented, degraded),
                (reclaimed, redistributed),
            )| {
                ApiResponse::Adaptive(AdaptiveReply {
                    app,
                    generation,
                    levels,
                    predicted_speedup: sp,
                    predicted_qos: qos,
                    steps,
                    replans,
                    resegmented,
                    degraded,
                    budget_reclaimed: reclaimed,
                    budget_redistributed: redistributed,
                    measured: None,
                })
            },
        );
    let error = (app_name(), 0usize..ALL_CODES.len()).prop_map(|(message, i)| ApiResponse::Error {
        code: ALL_CODES[i],
        message,
    });
    OneOf(vec![
        optimize.boxed(),
        adaptive.boxed(),
        predict.boxed(),
        health.boxed(),
        error.boxed(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → parse → serialize is byte-identical and recovers the
    /// original request DTO.
    #[test]
    fn requests_round_trip_byte_identically(req in api_request()) {
        let wire = req.to_wire();
        let parsed = ApiRequest::parse(&wire).expect("parse own frame");
        prop_assert_eq!(&parsed, &req);
        prop_assert_eq!(parsed.to_wire(), wire);
    }

    /// Same for responses.
    #[test]
    fn responses_round_trip_byte_identically(resp in api_response()) {
        let wire = resp.to_wire();
        let parsed = ApiResponse::parse(&wire).expect("parse own frame");
        prop_assert_eq!(&parsed, &resp);
        prop_assert_eq!(parsed.to_wire(), wire);
    }

    /// A frame declaring any version other than v1 is rejected with
    /// `unsupported_version`, echoing the declared version.
    #[test]
    fn unknown_versions_are_rejected(req in api_request(), v in 2u64..1000) {
        let wire = req.to_wire();
        let needle = format!("\"v\":{API_VERSION}");
        let bumped = wire.replacen(&needle, &format!("\"v\":{v}"), 1);
        prop_assert_ne!(&bumped, &wire, "version field must be present");
        match ApiRequest::parse(&bumped) {
            Err(OpproxError::UnsupportedVersion { got }) => prop_assert_eq!(got, v),
            other => prop_assert!(false, "expected unsupported_version, got {other:?}"),
        }
        prop_assert_eq!(
            WireCode::of(&OpproxError::UnsupportedVersion { got: v }),
            WireCode::UnsupportedVersion
        );
    }

    /// Every strict prefix of a valid frame is malformed JSON and maps
    /// to `bad_request` — a truncated line never parses as a lesser
    /// request.
    #[test]
    fn truncated_frames_are_bad_requests(req in api_request(), cut in 0.0..1.0f64) {
        let wire = req.to_wire();
        let mut at = ((wire.len() - 1) as f64 * cut) as usize;
        while !wire.is_char_boundary(at) {
            at -= 1;
        }
        let truncated = &wire[..at];
        match ApiRequest::parse(truncated) {
            Err(e) => prop_assert_eq!(
                WireCode::of(&e),
                WireCode::BadRequest,
                "prefix {:?} mapped to the wrong code",
                truncated
            ),
            Ok(parsed) => prop_assert!(
                false,
                "truncated frame {:?} parsed as {:?}",
                truncated,
                parsed
            ),
        }
    }
}

/// Every `OpproxError` variant maps onto a distinct, parseable wire
/// code, and error responses carry it faithfully.
#[test]
fn wire_codes_are_total_and_stable() {
    for &code in ALL_CODES {
        assert_eq!(WireCode::parse(code.as_str()).unwrap(), code);
        let resp = ApiResponse::Error {
            code,
            message: "m".to_string(),
        };
        let wire = resp.to_wire();
        assert!(wire.contains(code.as_str()), "{wire}");
        assert_eq!(ApiResponse::parse(&wire).unwrap(), resp);
    }
    assert!(WireCode::parse("no_such_code").is_err());
}
