//! Domain scenario: phase-aware tuning of a shock-hydrodynamics code.
//!
//! LULESH's outer loop runs until the simulation reaches its end time
//! under a Courant-condition time step, so approximating its kernels
//! changes the *iteration count* as well as the per-iteration work —
//! the trickiest case for approximation autotuning. This example trains
//! OPPROX once and compares the plans it picks across error budgets.
//!
//! ```bash
//! cargo run --release --example lulesh_tuning
//! ```

use opprox::approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use opprox::core::evaluator::EvalEngine;
use opprox::core::pipeline::{Opprox, TrainingOptions};
use opprox::core::report::percent_less_work;
use opprox::core::request::OptimizeRequest;
use opprox::core::AccuracySpec;
use opprox_apps::Lulesh;

fn main() {
    let app = Lulesh::new();
    let input = InputParams::new(vec![64.0, 2.0]); // mesh length, regions
    let golden = app.golden(&input).expect("golden run");
    println!(
        "accurate run: {} outer-loop iterations, {} work units",
        golden.outer_iters, golden.work
    );

    // Show why phase-agnostic approximation is risky here: the same
    // setting can lengthen the outer loop and *slow the code down*.
    let risky = opprox::approx_rt::LevelConfig::new(vec![3, 3, 3, 0]);
    let slow = app
        .run(&input, &PhaseSchedule::constant(risky.clone()))
        .expect("risky run");
    println!(
        "whole-run config {:?}: {} iterations (vs {}), speedup {:.2} — a slowdown!",
        risky.levels(),
        slow.outer_iters,
        golden.outer_iters,
        golden.speedup_over(&slow)
    );

    println!("\ntraining OPPROX …");
    let trained = Opprox::train(&app, &TrainingOptions::default()).expect("training");

    println!("\nphase-aware plans per error budget:");
    // One engine across all budgets: candidate plans shared between
    // budgets come out of the execution cache instead of re-running.
    let engine = EvalEngine::default();
    for budget in [5.0, 10.0, 20.0] {
        let spec = AccuracySpec::new(budget);
        let result = OptimizeRequest::new(input.clone(), spec)
            .validate_on(&app)
            .engine(&engine)
            .run(&trained)
            .expect("optimization");
        let outcome = result.measured.expect("validated requests measure");
        let configs: Vec<_> = result
            .plan
            .schedule
            .configs()
            .iter()
            .map(|c| c.levels().to_vec())
            .collect();
        println!(
            "  budget {budget:>4.1}%: {:.1}% less work, measured QoS {:.2}%, iterations {} — levels {:?}",
            percent_less_work(outcome.speedup),
            outcome.qos,
            outcome.outer_iters,
            configs
        );
        assert!(outcome.qos <= budget);
    }
    println!("\n{}", engine.metrics());
    println!(
        "\nNote how the early phases stay (nearly) accurate while the\n\
         approximation concentrates in the later phases, where the blast\n\
         wave is already developed and errors no longer compound."
    );
}
