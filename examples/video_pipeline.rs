//! Streaming scenario: a video filter-and-encode pipeline with a PSNR
//! quality target and input-dependent control flow.
//!
//! The pipeline's `filter_order` input parameter selects between two
//! filter chains (edge→deflate vs deflate→edge); OPPROX's decision-tree
//! classifier learns this and keeps separate models per control flow.
//! Budgets are expressed as PSNR targets like the paper's FFmpeg
//! evaluation.
//!
//! ```bash
//! cargo run --release --example video_pipeline
//! ```

use opprox::approx_rt::qos::PSNR_CAP;
use opprox::approx_rt::InputParams;
use opprox::core::pipeline::{Opprox, TrainingOptions};
use opprox::core::report::percent_less_work;
use opprox::core::request::OptimizeRequest;
use opprox::core::AccuracySpec;
use opprox_apps::VideoPipeline;

fn main() {
    let app = VideoPipeline::new();
    println!("training OPPROX on the video pipeline …");
    let trained = Opprox::train(&app, &TrainingOptions::default()).expect("training");

    println!(
        "control-flow classes learned: {}",
        trained.models().control_flow().num_classes()
    );

    for order in [0.0, 1.0] {
        // 16 fps × 5 s at 600 kbit with the selected filter order.
        let input = InputParams::new(vec![16.0, 5.0, 600.0, order]);
        let class = trained
            .models()
            .control_flow()
            .predict(&input)
            .expect("class prediction");
        println!(
            "\nfilter order {order}: predicted control-flow class {class} \
             (signature {:?})",
            trained.models().control_flow().signature(class)
        );
        for target_psnr in [30.0, 20.0] {
            let spec = AccuracySpec::new(PSNR_CAP - target_psnr);
            let outcome = OptimizeRequest::new(input.clone(), spec)
                .validate_on(&app)
                .run(&trained)
                .expect("optimization")
                .measured
                .expect("validated requests measure");
            let achieved_psnr = PSNR_CAP - outcome.qos;
            println!(
                "  target PSNR ≥ {target_psnr:>4.1} dB: {:.1}% less work, \
                 achieved PSNR {:.1} dB",
                percent_less_work(outcome.speedup),
                achieved_psnr
            );
            assert!(achieved_psnr + 1e-9 >= target_psnr);
        }
    }
}
