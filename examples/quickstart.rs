//! Quickstart: train OPPROX on an application, optimize for a QoS
//! budget, and run the resulting phase-aware schedule.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use opprox::approx_rt::{ApproxApp, InputParams};
use opprox::core::pipeline::{Opprox, TrainingOptions};
use opprox::core::report::percent_less_work;
use opprox::core::request::OptimizeRequest;
use opprox::core::AccuracySpec;
use opprox_apps::Pso;

fn main() {
    // 1. Pick an application with tunable approximable blocks. The five
    //    paper benchmarks live in `opprox_apps`; your own app just needs
    //    to implement the `ApproxApp` trait (see examples/custom_app.rs).
    let app = Pso::new();
    println!("application: {}", app.meta().name);
    for (i, b) in app.meta().blocks.iter().enumerate() {
        println!(
            "  block {i}: {} ({}, levels 0..={})",
            b.name, b.technique, b.max_level
        );
    }

    // 2. Offline: profile the representative inputs and fit the
    //    phase-aware speedup/QoS models (paper Sec. 3.3–3.7).
    println!("\ntraining …");
    let trained = Opprox::train(&app, &TrainingOptions::default()).expect("training");
    println!(
        "trained {} phases; per-phase model R² (speedup, qos): {:?}",
        trained.num_phases(),
        trained
            .models()
            .accuracy_summary()
            .iter()
            .map(|(p, s, q)| format!("phase {p}: ({s:.2}, {q:.2})"))
            .collect::<Vec<_>>()
    );

    // 3. Online: for a production input and error budget, solve the
    //    phase-specific optimization problem (Algorithm 2) with bounded
    //    empirical validation, then run the chosen schedule.
    let input = InputParams::new(vec![20.0, 4.0]); // swarm size, dimension
    let spec = AccuracySpec::new(10.0); // tolerate 10% QoS degradation
    let result = OptimizeRequest::new(input, spec)
        .validate_on(&app)
        .run(&trained)
        .expect("optimization");
    let outcome = result.measured.expect("validated requests measure");

    println!("\nchosen per-phase levels ({:?} path):", result.path);
    for (phase, cfg) in result.plan.schedule.configs().iter().enumerate() {
        println!("  phase {}: {:?}", phase + 1, cfg.levels());
    }
    println!(
        "\nmeasured: {:.1}% less work at {:.2}% QoS degradation (budget {:.1}%)",
        percent_less_work(outcome.speedup),
        outcome.qos,
        spec.error_budget()
    );
    assert!(outcome.qos <= spec.error_budget());
}
