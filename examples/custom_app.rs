//! Bringing your own application: implement [`ApproxApp`] for a custom
//! iterative computation and let OPPROX tune it.
//!
//! The example application is a Jacobi solver for a 1D Poisson problem —
//! an iterative numerical kernel with the classic outer-loop pattern.
//! Its single approximable block perforates the sweep over grid points.
//!
//! ```bash
//! cargo run --release --example custom_app
//! ```

use opprox::approx_rt::app::AppMeta;
use opprox::approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox::approx_rt::log::CallContextLog;
use opprox::approx_rt::technique::perforated_indices_offset;
use opprox::approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};
use opprox::core::pipeline::{Opprox, TrainingOptions};
use opprox::core::report::percent_less_work;
use opprox::core::request::OptimizeRequest;
use opprox::core::sampling::SamplingPlan;
use opprox::core::AccuracySpec;

/// A Jacobi solver for `−u'' = f` on a 1D grid with zero boundaries.
struct JacobiSolver {
    meta: AppMeta,
}

impl JacobiSolver {
    fn new() -> Self {
        JacobiSolver {
            meta: AppMeta {
                name: "Jacobi".into(),
                input_param_names: vec!["grid_points".into(), "sweeps".into()],
                blocks: vec![BlockDescriptor::new(
                    "jacobi_sweep",
                    TechniqueKind::LoopPerforation,
                    4,
                )],
            },
        }
    }
}

impl ApproxApp for JacobiSolver {
    fn meta(&self) -> &AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let n = input.get(0) as usize;
        let sweeps = input.get(1) as u64;
        if !(8..=4096).contains(&n) || !(1..=10_000).contains(&sweeps) {
            return Err(RuntimeError::InvalidInput(
                "grid_points must be 8..=4096 and sweeps 1..=10000".into(),
            ));
        }

        // Right-hand side: a couple of point sources.
        let h2 = 1.0 / ((n + 1) as f64 * (n + 1) as f64);
        let mut f = vec![1.0; n];
        f[n / 3] = 50.0;
        f[2 * n / 3] = -30.0;

        let mut u = vec![0.0f64; n];
        let mut next = vec![0.0f64; n];
        let mut log = CallContextLog::new();
        let mut work = 0u64;

        for iter in 0..sweeps {
            let level = schedule.level_at(iter, 0);
            let mut w = 0u64;
            next.copy_from_slice(&u);
            for i in perforated_indices_offset(n, level, iter as usize) {
                let left = if i == 0 { 0.0 } else { u[i - 1] };
                let right = if i + 1 == n { 0.0 } else { u[i + 1] };
                next[i] = 0.5 * (left + right + h2 * f[i]);
                w += 5;
            }
            std::mem::swap(&mut u, &mut next);
            work += w + 1;
            log.record(iter, 0, w);
        }

        Ok(RunResult {
            output: u,
            work,
            outer_iters: sweeps,
            log,
        })
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        vec![
            InputParams::new(vec![96.0, 300.0]),
            InputParams::new(vec![128.0, 300.0]),
            InputParams::new(vec![96.0, 450.0]),
        ]
    }
}

fn main() {
    let app = JacobiSolver::new();
    println!("training OPPROX on a custom Jacobi solver …");
    let opts = TrainingOptions {
        num_phases: Some(4),
        sampling: SamplingPlan {
            num_phases: 4,
            sparse_samples: 12,
            whole_run_samples: 0,
            seed: 0xCAFE,
        },
        ..TrainingOptions::default()
    };
    let trained = Opprox::train(&app, &opts).expect("training");

    let input = InputParams::new(vec![112.0, 350.0]);
    for budget in [1.0, 5.0] {
        let spec = AccuracySpec::new(budget);
        let result = OptimizeRequest::new(input.clone(), spec)
            .validate_on(&app)
            .run(&trained)
            .expect("optimization");
        let outcome = result.measured.expect("validated requests measure");
        println!(
            "budget {budget:>4.1}%: {:.1}% less work at {:.2}% QoS degradation — levels {:?}",
            percent_less_work(outcome.speedup),
            outcome.qos,
            result
                .plan
                .schedule
                .configs()
                .iter()
                .map(|c| c.levels().to_vec())
                .collect::<Vec<_>>()
        );
        assert!(outcome.qos <= budget);
    }
    println!(
        "\nJacobi is self-correcting: early perforated sweeps are repaired\n\
         by later accurate ones, so OPPROX concentrates approximation in\n\
         the *early* phases here — phase-awareness adapts per application."
    );
}
